"""Unit tests for the dominance-preorder matrix over a schema universe."""

import pytest

from repro.core.search import dominance_matrix
from repro.relational import is_isomorphic, parse_schema


@pytest.fixture(scope="module")
def universe():
    """Three schemas with a known dominance structure:

    tiny  = R(k*)            — one keyed unary relation
    mid   = R(k*, a)         — adds a non-key attribute
    other = R(k*: U)         — different key type, incomparable with tiny
    """
    tiny, _ = parse_schema("R(a*: T)")
    mid, _ = parse_schema("P(x*: T, y: T)")
    other, _ = parse_schema("Q0(z*: U)")
    return [tiny, mid, other]


@pytest.fixture(scope="module")
def matrix(universe):
    return dominance_matrix(universe, max_atoms=2)


def test_matrix_reflexive(universe, matrix):
    for i in range(len(universe)):
        assert matrix[i][i]


def test_matrix_transitive(universe, matrix):
    n = len(universe)
    for i in range(n):
        for j in range(n):
            for k in range(n):
                if matrix[i][j] and matrix[j][k]:
                    assert matrix[i][k]


def test_smaller_dominated_by_larger(universe, matrix):
    # tiny ⪯ mid (embed, project back) but not mid ⪯ tiny.
    assert matrix[0][1]
    assert not matrix[1][0]


def test_incomparable_types(universe, matrix):
    # tiny and other share no attribute types: no dominance either way.
    assert not matrix[0][2]
    assert not matrix[2][0]


def test_mutual_dominance_iff_isomorphic(universe, matrix):
    n = len(universe)
    for i in range(n):
        for j in range(n):
            if matrix[i][j] and matrix[j][i]:
                # Theorem 13: mutual dominance = equivalence = isomorphism.
                assert is_isomorphic(universe[i], universe[j])
