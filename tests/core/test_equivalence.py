"""Unit tests for the Theorem 13 decision procedure."""

import pytest

from repro.core import cq_equivalent, decide_equivalence, locate_failure
from repro.core.certificates import FailureStep
from repro.errors import SchemaError
from repro.relational import parse_schema
from repro.workloads import random_keyed_schema, shuffled_copy


def test_isomorphic_schemas_equivalent_with_certificate(isomorphic_pair):
    s1, s2 = isomorphic_pair
    decision = decide_equivalence(s1, s2)
    assert decision.equivalent
    assert decision.certificate is not None
    assert decision.certificate.verify()
    assert decision.explanation is None
    assert "equivalent" in decision.explain()


def test_boolean_shortcut(isomorphic_pair):
    s1, s2 = isomorphic_pair
    assert cq_equivalent(s1, s2)
    assert cq_equivalent(s1, s1)


def test_skip_certificate_construction(isomorphic_pair):
    s1, s2 = isomorphic_pair
    decision = decide_equivalence(s1, s2, build_certificate=False)
    assert decision.equivalent and decision.certificate is None


def test_relation_count_failure():
    s1, _ = parse_schema("R(a*: T)")
    s2, _ = parse_schema("R(a*: T)\nS(b*: T)")
    decision = decide_equivalence(s1, s2)
    assert not decision.equivalent
    assert decision.explanation.step is FailureStep.RELATION_COUNT


def test_key_signature_failure():
    s1, _ = parse_schema("R(a*: T, b: U)")
    s2, _ = parse_schema("R(a*: U, b: T)")
    decision = decide_equivalence(s1, s2)
    assert not decision.equivalent
    assert decision.explanation.step is FailureStep.KEY_SIGNATURES


def test_composite_vs_simple_key_failure():
    s1, _ = parse_schema("R(a*: T, b*: T)")
    s2, _ = parse_schema("R(a*: T, b: T)")
    decision = decide_equivalence(s1, s2)
    assert not decision.equivalent
    assert decision.explanation.step is FailureStep.KEY_SIGNATURES


def test_nonkey_type_count_failure(non_isomorphic_pair):
    s1, s2 = non_isomorphic_pair
    decision = decide_equivalence(s1, s2)
    assert not decision.equivalent
    assert decision.explanation.step is FailureStep.NONKEY_TYPE_COUNTS


def test_nonkey_placement_failure():
    """Same key signatures, same global type counts, different placement.

    Distinct key types pin each relation to its partner, and the non-key
    attributes are swapped between them.
    """
    s1, _ = parse_schema("R(k*: K1, x: A)\nS(j*: K2, y: B)")
    s2, _ = parse_schema("R(k*: K1, x: B)\nS(j*: K2, y: A)")
    decision = decide_equivalence(s1, s2)
    assert not decision.equivalent
    assert decision.explanation.step is FailureStep.NONKEY_PLACEMENT


def test_unkeyed_schema_rejected():
    s1, _ = parse_schema("E(a: T, b: T)")
    with pytest.raises(SchemaError):
        decide_equivalence(s1, s1)


def test_shuffled_copies_always_equivalent():
    for seed in range(8):
        original = random_keyed_schema(seed, ["A", "B", "C"], n_relations=3)
        copy = shuffled_copy(original, seed=seed + 50)
        assert cq_equivalent(original, copy)


def test_locate_failure_precondition_order():
    """locate_failure reports the *first* failing proof step."""
    s1, _ = parse_schema("R(a*: T, x: U)")
    s2, _ = parse_schema("R(a*: U, x: U)\nS(b*: T)")
    explanation = locate_failure(s1, s2)
    assert explanation.step is FailureStep.RELATION_COUNT


def test_certificate_dominance_pairs_have_right_schemas(isomorphic_pair):
    s1, s2 = isomorphic_pair
    decision = decide_equivalence(s1, s2)
    certificate = decision.certificate
    assert certificate.forward.dominated == s1
    assert certificate.forward.dominating == s2
    assert certificate.backward.dominated == s2
    assert certificate.backward.dominating == s1
