"""Unit tests for the unkeyed (Hull 1986) equivalence API."""

import pytest

from repro.core.hull import (
    hull_dominance_pair,
    hull_equivalent,
    hull_witness,
    search_unkeyed_dominance,
)
from repro.errors import SchemaError
from repro.relational import parse_schema


def unkeyed(text):
    schema, _ = parse_schema(text)
    return schema


def test_renamed_unkeyed_schemas_equivalent():
    s1 = unkeyed("E(src: N, dst: N)")
    s2 = unkeyed("Edge(a: N, b: N)")
    assert hull_equivalent(s1, s2)
    witness = hull_witness(s1, s2)
    assert witness is not None and witness.verify()


def test_arity_difference_inequivalent():
    s1 = unkeyed("E(src: N, dst: N)")
    s2 = unkeyed("E(src: N, dst: N, w: N)")
    assert not hull_equivalent(s1, s2)
    assert hull_witness(s1, s2) is None
    assert hull_dominance_pair(s1, s2) is None


def test_keyed_schemas_rejected():
    keyed, _ = parse_schema("R(a*: T)")
    with pytest.raises(SchemaError):
        hull_equivalent(keyed, keyed)


def test_dominance_pair_verifies():
    s1 = unkeyed("E(src: N, dst: N)")
    s2 = unkeyed("Edge(a: N, b: N)")
    pair = hull_dominance_pair(s1, s2)
    assert pair is not None
    assert pair.holds()


def test_search_finds_witness_for_renaming():
    s1 = unkeyed("E(src: N, dst: N)")
    s2 = unkeyed("Edge(a: N, b: N)")
    result = search_unkeyed_dominance(s1, s2, max_atoms=1)
    assert result.found
    assert result.pair.holds()


def test_search_hull_negative_side():
    """Hull's theorem, empirically: non-isomorphic unkeyed schemas admit no
    equivalence witnesses within the bounds (both directions checked)."""
    s1 = unkeyed("E(src: N, dst: N)")
    s2 = unkeyed("P(x: N)")
    forward = search_unkeyed_dominance(s1, s2, max_atoms=2)
    assert not forward.found


def test_unkeyed_mappings_need_no_validity_filter():
    """Every enumerated unkeyed candidate pair reaches the exact check."""
    s1 = unkeyed("P(x: N)")
    s2 = unkeyed("Q0(y: N)")
    result = search_unkeyed_dominance(s1, s2, max_atoms=1)
    assert result.found
    assert result.stats.pairs_gadget_rejected == 0
    assert result.stats.exact_checks == result.stats.pairs_tried
