"""Unit tests for the executable lemma checks."""

import pytest

from repro.core.lemmas import (
    check_all,
    check_lemma1,
    check_lemma2,
    check_lemma3,
    check_lemma4,
    check_lemma5,
    check_lemma7,
    check_lemma8,
    check_lemma10,
    check_lemma11,
    check_lemma12,
    check_theorem9,
)
from repro.cq.parser import parse_query
from repro.mappings import QueryMapping, isomorphism_pair, kappa_construction
from repro.relational import (
    find_isomorphism,
    parse_schema,
    random_instance,
    relation,
    schema,
)


@pytest.fixture
def genuine_pair(isomorphic_pair):
    s1, s2 = isomorphic_pair
    return isomorphism_pair(find_isomorphism(s1, s2))


@pytest.fixture
def rr_schema():
    return schema(
        relation("R", [("a", "T"), ("b", "T")], key=["a"]),
        relation("P", [("x", "T"), ("y", "T")], key=["x"]),
    )


def test_lemma1_on_paper_example(rr_schema):
    q = parse_query(
        "Q(X, Y) :- R(X, Y), R(A, B), R(C, D), X = A, X = C, Y = B, Y = D."
    )
    instances = [random_instance(rr_schema, rows_per_relation=5, seed=s) for s in range(3)]
    check = check_lemma1(q, rr_schema, instances)
    assert check.holds, check.detail
    assert bool(check)


def test_lemma1_premise_failure_reported(rr_schema):
    q = parse_query("Q(X, Y) :- R(X, Y), R(A, B).")
    check = check_lemma1(q, rr_schema, ())
    assert not check.holds
    assert "premise" in check.detail


def test_lemma2_on_identity_join_query(rr_schema):
    q = parse_query("Q(X, A) :- R(X, Y), R(A, B), P(C, D), X = A.")
    instances = [random_instance(rr_schema, rows_per_relation=5, seed=s) for s in range(3)]
    check = check_lemma2(q, rr_schema, instances)
    assert check.holds, check.detail


def test_lemma2_premise_failure(rr_schema):
    q = parse_query("Q(X) :- R(X, Y), X = Y.")
    assert not check_lemma2(q, rr_schema, ()).holds


def test_lemmas_3_to_5_on_genuine_pair(genuine_pair):
    alpha, beta = genuine_pair
    assert check_lemma3(alpha, beta).holds
    assert check_lemma4(alpha, beta).holds
    assert check_lemma5(alpha, beta).holds


def test_lemma3_violation_detected():
    """α drops a₂ entirely: it is received by nothing, Lemma 3 fails."""
    s1, _ = parse_schema("A(a1*: T, a2: U)")
    s2, _ = parse_schema("M(m1*: T, m2: U)")
    alpha = QueryMapping(s1, s2, {"M": parse_query("M(X, U:0) :- A(X, Y).")})
    beta = QueryMapping(s2, s1, {"A": parse_query("A(X, Y) :- M(X, Y).")})
    assert not check_lemma3(alpha, beta).holds


def test_lemma4_violation_detected():
    """β reads M.m2 into a2 but α never writes a2 into m2."""
    s1, _ = parse_schema("A(a1*: T, a2: U)")
    s2, _ = parse_schema("M(m1*: T, m2: U)")
    alpha = QueryMapping(s1, s2, {"M": parse_query("M(X, U:0) :- A(X, Y).")})
    beta = QueryMapping(s2, s1, {"A": parse_query("A(X, Y) :- M(X, Y).")})
    assert not check_lemma4(alpha, beta).holds


def test_lemma5_violation_detected():
    """m2 receives a2 under α, but β reads m2 back *only* into a1."""
    s1, _ = parse_schema("A(a1*: T, a2: T)")
    s2, _ = parse_schema("M(m1*: T, m2: T)")
    alpha = QueryMapping(s1, s2, {"M": parse_query("M(X, Y) :- A(X, Y).")})
    beta = QueryMapping(s2, s1, {"A": parse_query("A(Y, X) :- M(X, Y).")})
    assert not check_lemma5(alpha, beta).holds


def test_lemma7_on_key_copying_pair():
    """α copies the key into a non-key column; Lemma 7 must hold."""
    s1, _ = parse_schema("A(k*: K, v: V)")
    s2, _ = parse_schema("M(m*: K, c: K, v: V)")
    alpha = QueryMapping(s1, s2, {"M": parse_query("M(X, X, Y) :- A(X, Y).")})
    beta = QueryMapping(s2, s1, {"A": parse_query("A(C, Y) :- M(X, C, Y).")})
    check = check_lemma7(alpha, beta)
    assert check.holds, check.detail
    assert "1 (B, K) pairs" in check.detail


def test_lemma7_no_applicable_pairs(genuine_pair):
    alpha, beta = genuine_pair
    check = check_lemma7(alpha, beta)
    assert check.holds


def test_lemmas_10_to_12_on_genuine_pair(genuine_pair):
    alpha, beta = genuine_pair
    assert check_lemma10(alpha, beta).holds
    assert check_lemma11(alpha, beta).holds
    assert check_lemma12(alpha, beta).holds


def test_lemma10_violation_detected():
    """Two S₁ attributes both read the same S₂ attribute under β."""
    s1, _ = parse_schema("A(a1*: T, a2: T)")
    s2, _ = parse_schema("M(m1*: T, m2: T)")
    alpha = QueryMapping(s1, s2, {"M": parse_query("M(X, Y) :- A(X, Y).")})
    beta = QueryMapping(s2, s1, {"A": parse_query("A(X, X) :- M(X, Y).")})
    assert not check_lemma10(alpha, beta).holds


def test_lemma11_not_applicable_when_type_counts_differ():
    s1, _ = parse_schema("A(a1*: T)")
    s2, _ = parse_schema("M(m1*: T, m2: T)")
    alpha = QueryMapping(s1, s2, {"M": parse_query("M(X, X) :- A(X).")})
    beta = QueryMapping(s2, s1, {"A": parse_query("A(X) :- M(X, Y).")})
    check = check_lemma11(alpha, beta)
    assert check.holds and "not applicable" in check.detail


def test_theorem9_and_lemma8_on_genuine_pair(genuine_pair):
    alpha, beta = genuine_pair
    assert check_theorem9(alpha, beta).holds
    construction = kappa_construction(alpha, beta)
    assert check_lemma8(construction).holds


def test_check_all_passes_on_genuine_pair(genuine_pair):
    alpha, beta = genuine_pair
    checks = check_all(alpha, beta)
    assert len(checks) == 9
    failing = [c for c in checks if not c.holds]
    assert not failing, failing
