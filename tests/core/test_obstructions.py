"""Unit tests for the lemma-based dominance obstructions."""

import pytest

from repro.core.obstructions import (
    Obstruction,
    dominance_obstructions,
    dominance_possible,
)
from repro.core.search import search_dominance
from repro.relational import parse_schema
from repro.workloads import random_keyed_schema, shuffled_copy


def kinds(obstructions):
    return {o.kind for o in obstructions}


def test_no_obstructions_between_isomorphic(isomorphic_pair):
    s1, s2 = isomorphic_pair
    assert dominance_obstructions(s1, s2) == []
    assert dominance_possible(s1, s2)


def test_type_presence_obstruction():
    s1, _ = parse_schema("R(a*: T, b: Z)")
    s2, _ = parse_schema("P(x*: T)")
    obstructions = dominance_obstructions(s1, s2)
    assert "type-presence" in kinds(obstructions)
    assert any("Lemma 3" in o.basis for o in obstructions)


def test_type_pigeonhole_obstruction():
    s1, _ = parse_schema("R(a*: T, b: T, c: T)")
    s2, _ = parse_schema("P(x*: T, y: T)")
    obstructions = dominance_obstructions(s1, s2)
    assert "type-pigeonhole" in kinds(obstructions)


def test_key_pigeonhole_obstruction():
    """Same total type counts, but S1 has more *key* attributes of type T."""
    s1, _ = parse_schema("R(a*: T, b*: T)")
    s2, _ = parse_schema("P(x*: T, y: T)")
    obstructions = dominance_obstructions(s1, s2)
    assert "key-pigeonhole" in kinds(obstructions)


def test_capacity_obstruction_detected():
    """Two unary keyed relations hold more data than one (same types)."""
    s1, _ = parse_schema("R(a*: T)\nS(b*: T)")
    s2, _ = parse_schema("P(x*: T, y: T)")
    obstructions = dominance_obstructions(s1, s2)
    assert obstructions  # capacity or pigeonhole must fire
    # 2^n * 2^n = 4^n instances vs (1+n)^n: S1 wins for n ≥ 3.
    assert "capacity" in kinds(obstructions) or "key-pigeonhole" in kinds(
        obstructions
    )


def test_smaller_into_larger_has_no_obstruction():
    s1, _ = parse_schema("R(a*: T)")
    s2, _ = parse_schema("P(x*: T, y: T)")
    assert dominance_possible(s1, s2)


def test_obstructions_sound_against_search():
    """Whenever an obstruction fires, exhaustive bounded search agrees."""
    cases = [
        ("R(a*: T, b: T, c: T)", "P(x*: T, y: T)"),
        ("R(a*: T, b: Z)", "P(x*: T)"),
        ("R(a*: T, b*: T)", "P(x*: T, y: T)"),
    ]
    for text1, text2 in cases:
        s1, _ = parse_schema(text1)
        s2, _ = parse_schema(text2)
        assert dominance_obstructions(s1, s2)
        result = search_dominance(s1, s2, max_atoms=2)
        assert not result.found, (text1, text2)


def test_obstructions_never_fire_on_shuffled_copies():
    for seed in range(8):
        s1 = random_keyed_schema(seed, ["A", "B"], n_relations=2, max_arity=3)
        s2 = shuffled_copy(s1, seed=seed + 5)
        assert dominance_possible(s1, s2)
        assert dominance_possible(s2, s1)


def test_obstruction_repr_mentions_basis():
    o = Obstruction("type-presence", "Lemma 3", "details here")
    assert "Lemma 3" in repr(o)
