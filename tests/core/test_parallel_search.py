"""Parallel dominance search: ``n_workers > 1`` must change nothing but speed.

The parallel scan shards the α×β pair grid into contiguous ascending
chunks and takes the minimum witness index, so it must return *the same*
first witness (not just some witness) and the same scan verdicts as the
sequential loop.
"""

import pytest

from repro.core.search import (
    _chunk_ranges,
    dominance_matrix,
    search_dominance,
    theorem13_scan,
)
from repro.relational import parse_schema

EMP = "emp(ss*: SSN, name: Name)"
PERSON = "person(id*: SSN, nm: Name)"
WIDE = "person(id*: SSN, nm: Name, extra: Name)"


def _schema(text):
    return parse_schema(text)[0]


def test_chunk_ranges_partition_the_grid():
    for total in (1, 2, 5, 7, 16):
        for n_workers in (1, 2, 3, 8, 20):
            ranges = _chunk_ranges(total, n_workers)
            assert ranges[0][0] == 0 and ranges[-1][1] == total
            assert all(start < end for start, end in ranges)  # non-empty
            assert all(
                ranges[k][1] == ranges[k + 1][0] for k in range(len(ranges) - 1)
            )
            assert len(ranges) <= max(1, min(n_workers, total))


@pytest.mark.parametrize("pair", [(EMP, PERSON), (WIDE, EMP)])
def test_parallel_witness_matches_sequential(pair):
    s1, s2 = _schema(pair[0]), _schema(pair[1])
    sequential = search_dominance(s1, s2, max_atoms=1, n_workers=1)
    parallel = search_dominance(s1, s2, max_atoms=1, n_workers=2)
    assert sequential.found == parallel.found
    if sequential.found:
        # Deterministic first witness: identical mappings, not merely some pair.
        assert sequential.pair.alpha == parallel.pair.alpha
        assert sequential.pair.beta == parallel.pair.beta
    # Candidate counts are scan-order independent.
    assert sequential.stats.alpha_candidates == parallel.stats.alpha_candidates
    assert sequential.stats.beta_candidates == parallel.stats.beta_candidates


def test_parallel_scan_rows_match_sequential():
    schemas = [_schema(EMP), _schema(PERSON), _schema(WIDE)]
    sequential = theorem13_scan(schemas, max_atoms=1, n_workers=1)
    parallel = theorem13_scan(schemas, max_atoms=1, n_workers=2)
    assert parallel == sequential
    assert all(row.consistent_with_theorem13 for row in parallel)


def test_parallel_dominance_matrix_matches_sequential():
    schemas = [_schema(EMP), _schema(WIDE)]
    assert dominance_matrix(schemas, max_atoms=1, n_workers=2) == dominance_matrix(
        schemas, max_atoms=1, n_workers=1
    )


def test_stats_surface_perf_counters():
    from repro.utils import memo

    memo.clear_all()  # force cold caches so misses are observable
    s1, s2 = _schema(EMP), _schema(PERSON)
    result = search_dominance(s1, s2, max_atoms=1)
    assert result.found
    assert result.stats.wall_time > 0.0
    # The exact checks exercise the matcher and the memo layer.
    assert result.stats.cache_misses > 0
    assert result.stats.rows_probed >= 0


def test_chunk_ranges_of_empty_grid_is_empty():
    # Regression: a zero-pair grid used to produce the degenerate chunk
    # [(0, 0)], which downstream became ProcessPoolExecutor(max_workers=0).
    for n_workers in (1, 2, 8):
        assert _chunk_ranges(0, n_workers) == []
    assert _chunk_ranges(-3, 2) == []


def test_chunk_ranges_with_more_workers_than_pairs():
    assert _chunk_ranges(1, 8) == [(0, 1)]
    assert _chunk_ranges(3, 8) == [(0, 1), (1, 2), (2, 3)]


def test_parallel_search_on_empty_candidate_grid():
    # max_atoms=0 admits no view queries at all: both candidate sets are
    # empty, and the parallel path must degrade gracefully rather than
    # spin up a pool over zero chunks.
    s1, s2 = _schema(EMP), _schema(PERSON)
    result = search_dominance(s1, s2, max_atoms=0, n_workers=4)
    assert not result.found
    assert result.complete
    assert result.stats.alpha_candidates == 0
    assert result.stats.beta_candidates == 0
    assert result.stats.pairs_tried == 0


def test_more_workers_than_chunks_matches_sequential():
    s1, s2 = _schema(EMP), _schema(PERSON)
    sequential = search_dominance(s1, s2, max_atoms=1, n_workers=1)
    oversubscribed = search_dominance(s1, s2, max_atoms=1, n_workers=50)
    assert oversubscribed.found == sequential.found
    if sequential.found:
        assert oversubscribed.pair.alpha == sequential.pair.alpha
        assert oversubscribed.pair.beta == sequential.pair.beta
