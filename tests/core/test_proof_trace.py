"""Unit tests for Theorem 13 proof traces."""

from repro.core.equivalence import decide_equivalence
from repro.core.proof_trace import trace_theorem13
from repro.relational import parse_schema
from repro.workloads import random_keyed_schema, shuffled_copy


def test_trace_all_steps_pass_for_equivalent(isomorphic_pair):
    s1, s2 = isomorphic_pair
    trace = trace_theorem13(s1, s2)
    assert trace.conclusion
    assert len(trace.steps) == 3
    assert all(step.holds for step in trace.steps)
    assert "EQUIVALENT" in trace.render()


def test_trace_stops_at_key_step():
    s1, _ = parse_schema("R(a*: T, b: U)")
    s2, _ = parse_schema("R(a*: U, b: T)")
    trace = trace_theorem13(s1, s2)
    assert not trace.conclusion
    assert len(trace.steps) == 1
    assert trace.steps[0].name == "key correspondence"
    assert "Hull" in trace.steps[0].basis


def test_trace_stops_at_counting_step(non_isomorphic_pair):
    s1, s2 = non_isomorphic_pair
    trace = trace_theorem13(s1, s2)
    assert not trace.conclusion
    assert trace.steps[-1].name == "non-key type counts"
    assert "Lemma 3" in trace.steps[-1].basis


def test_trace_stops_at_placement_step():
    s1, _ = parse_schema("R(k*: K1, x: A)\nS(j*: K2, y: B)")
    s2, _ = parse_schema("R(k*: K1, x: B)\nS(j*: K2, y: A)")
    trace = trace_theorem13(s1, s2)
    assert not trace.conclusion
    assert trace.steps[-1].name == "non-key placement"
    assert "Lemmas 10-12" in trace.steps[-1].basis


def test_trace_agrees_with_decision_procedure():
    pairs = []
    for seed in range(6):
        base = random_keyed_schema(seed, ["A", "B"], n_relations=2, max_arity=3)
        pairs.append((base, shuffled_copy(base, seed=seed + 9)))
        other = random_keyed_schema(seed + 100, ["A", "B"], n_relations=2, max_arity=3)
        pairs.append((base, other))
    for s1, s2 in pairs:
        trace = trace_theorem13(s1, s2)
        decision = decide_equivalence(s1, s2, build_certificate=False)
        assert trace.conclusion == decision.equivalent


def test_render_mentions_failing_step():
    s1, _ = parse_schema("R(a*: T, b: U)")
    s2, _ = parse_schema("R(a*: U, b: T)")
    rendered = trace_theorem13(s1, s2).render()
    assert "✗" in rendered
    assert "NOT equivalent" in rendered
