"""Unit tests for the reporting helpers."""

import pytest

from repro.core.lemmas import LemmaCheck
from repro.core.report import Table, format_checks


def test_table_renders_aligned():
    table = Table(["name", "value"], title="Demo")
    table.add_row("alpha", 1)
    table.add_row("a-longer-name", 22)
    rendered = table.render()
    lines = rendered.splitlines()
    assert lines[0] == "Demo"
    assert "name" in lines[2]
    # All data lines have equal length padding structure.
    assert "alpha" in rendered and "a-longer-name" in rendered


def test_table_rejects_wrong_cell_count():
    table = Table(["a", "b"])
    with pytest.raises(ValueError):
        table.add_row("only-one")


def test_table_without_title():
    table = Table(["x"])
    table.add_row(3.5)
    assert table.render().splitlines()[0].strip() == "x"


def test_format_checks():
    checks = [
        LemmaCheck("lemma3", True, "fine"),
        LemmaCheck("lemma4", False, "broken"),
    ]
    rendered = format_checks(checks, title="T")
    assert "lemma3" in rendered and "yes" in rendered
    assert "NO" in rendered and "broken" in rendered
