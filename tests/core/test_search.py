"""Unit tests for the bounded exhaustive search (experiment E1 machinery)."""

import pytest

from repro.core.search import (
    enumerate_mappings,
    enumerate_view_queries,
    search_dominance,
    search_equivalence,
    theorem13_scan,
)
from repro.cq.typecheck import is_well_typed
from repro.relational import is_isomorphic, parse_schema, relation, schema


@pytest.fixture
def tiny():
    s, _ = parse_schema("R(a*: T, b: U)")
    return s


def test_enumerated_queries_are_well_typed(tiny):
    view = relation("V", [("v1", "T"), ("v2", "U")], key=["v1"])
    queries = list(enumerate_view_queries(tiny, view, max_atoms=2))
    assert queries
    for q in queries:
        assert is_well_typed(q, tiny)
        assert q.view_name == "V"
        assert len(q.body) <= 2


def test_enumeration_includes_the_projection(tiny):
    """The canonical copy view must be among the candidates."""
    view = relation("V", [("v1", "T"), ("v2", "U")], key=["v1"])
    queries = list(enumerate_view_queries(tiny, view, max_atoms=1))
    from repro.cq.parser import parse_query
    from repro.cq.homomorphism import are_equivalent

    target = parse_query("V(X, Y) :- R(X, Y).")
    assert any(are_equivalent(q, target, tiny) for q in queries)


def test_enumeration_cap(tiny):
    view = relation("V", [("v1", "T")], key=["v1"])
    capped = list(enumerate_view_queries(tiny, view, max_atoms=2, max_queries=3))
    assert len(capped) == 3


def test_enumeration_empty_when_untypeable(tiny):
    """A view needing a type the source lacks has no candidates."""
    view = relation("V", [("v1", "Z")], key=["v1"])
    assert list(enumerate_view_queries(tiny, view, max_atoms=2)) == []


def test_enumerate_mappings_cross_product(tiny):
    target, _ = parse_schema("P(p*: T)\nQ0(q*: U)")
    mappings = list(enumerate_mappings(tiny, target, max_atoms=1))
    assert mappings
    for mapping in mappings:
        assert set(mapping.queries()) == {"P", "Q0"}


def test_search_finds_witness_for_isomorphic():
    s1, _ = parse_schema("R(a*: T, b: U)")
    s2, _ = parse_schema("P(x*: T, y: U)")
    result = search_dominance(s1, s2, max_atoms=1)
    assert result.found
    assert result.pair.holds()
    assert result.stats.exact_checks >= 1


def test_search_fails_for_incompatible_types():
    s1, _ = parse_schema("R(a*: T, b: U)")
    s2, _ = parse_schema("P(x*: T, y: T)")
    result = search_equivalence(s1, s2, max_atoms=2)
    assert not result.found


def test_search_fails_for_lossy_target():
    """S₂ has fewer attributes: nothing can encode S₁'s non-key column."""
    s1, _ = parse_schema("R(a*: T, b: U)")
    s2, _ = parse_schema("P(x*: T)")
    result = search_equivalence(s1, s2, max_atoms=2)
    assert not result.found


def test_theorem13_scan_consistency():
    schemas = [
        parse_schema("R(a*: T)")[0],
        parse_schema("P(x*: T)")[0],        # isomorphic to the first
        parse_schema("R(a*: T, b: T)")[0],  # not isomorphic
    ]
    rows = theorem13_scan(schemas, max_atoms=1)
    assert len(rows) == 6  # unordered pairs incl. self-pairs
    assert all(row.consistent_with_theorem13 for row in rows)
    assert any(row.isomorphic and row.index1 != row.index2 for row in rows)
