"""Unit tests for the Theorem 6 FD-transfer checker."""

import pytest

from repro.core.theorem6 import (
    fd_holds_in_keyed_schema,
    superkey_images,
    transferred_dependencies,
    verify_theorem6,
)
from repro.cq.parser import parse_query
from repro.mappings import QueryMapping, isomorphism_pair
from repro.relational import QualifiedAttribute, find_isomorphism, parse_schema


def test_fd_holds_key_implication():
    s, _ = parse_schema("R(a*: T, b: U, c: U)")
    a = QualifiedAttribute("R", "a", "T")
    b = QualifiedAttribute("R", "b", "U")
    c = QualifiedAttribute("R", "c", "U")
    assert fd_holds_in_keyed_schema(s, frozenset({a}), b)
    assert fd_holds_in_keyed_schema(s, frozenset({a, b}), c)
    assert not fd_holds_in_keyed_schema(s, frozenset({b}), c)


def test_fd_cross_relation_fails():
    s, _ = parse_schema("R(a*: T)\nS(x*: T, y: U)")
    a = QualifiedAttribute("R", "a", "T")
    y = QualifiedAttribute("S", "y", "U")
    assert not fd_holds_in_keyed_schema(s, frozenset({a}), y)


def test_trivial_fd_holds():
    s, _ = parse_schema("R(a*: T, b: U)")
    b = QualifiedAttribute("R", "b", "U")
    assert fd_holds_in_keyed_schema(s, frozenset({b}), b)


def test_transfer_on_isomorphism_pair(isomorphic_pair):
    s1, s2 = isomorphic_pair
    alpha, beta = isomorphism_pair(find_isomorphism(s1, s2))
    transferred = transferred_dependencies(alpha, beta)
    assert transferred  # every S2 key transfers
    assert all(t.holds for t in transferred)
    assert verify_theorem6(alpha, beta)


def test_transfer_detects_broken_candidate():
    """β routes an S₂ key and non-key into different S₁ relations: the
    transferred FD is cross-relation, hence fails."""
    s1, _ = parse_schema("A(a*: T)\nB(b*: U)")
    s2, _ = parse_schema("M(m*: T, n: U)")
    alpha = QueryMapping(
        s1, s2, {"M": parse_query("M(X, Y) :- A(X), B(Y).")}
    )
    beta = QueryMapping(
        s2,
        s1,
        {
            "A": parse_query("A(X) :- M(X, Y)."),
            "B": parse_query("B(Y) :- M(X, Y)."),
        },
    )
    transferred = transferred_dependencies(alpha, beta)
    assert any(not t.holds for t in transferred)
    assert not verify_theorem6(alpha, beta)


def test_premise_failure_skips_relation():
    """If a key attribute is never received under β, nothing is transferred."""
    s1, _ = parse_schema("A(a*: T, v: V)")
    s2, _ = parse_schema("M(m*: T, n: V)")
    alpha = QueryMapping(s1, s2, {"M": parse_query("M(X, Y) :- A(X, Y).")})
    beta = QueryMapping(
        s2, s1, {"A": parse_query("A(X, V:'f') :- M(X, Y).")}
    )
    # Non-key n is only padded back; m is received by a — premise holds for
    # (K → m) and (K → n) only where receivers exist.
    transferred = transferred_dependencies(alpha, beta)
    rhs_attrs = {t.rhs.attribute for t in transferred}
    assert "a" in rhs_attrs
    assert all(t.holds for t in transferred)


def test_superkey_images(isomorphic_pair):
    s1, s2 = isomorphic_pair
    alpha, beta = isomorphism_pair(find_isomorphism(s1, s2))
    images = superkey_images(alpha, beta)
    assert len(images) == len(list(s2))
    for relation_name, receivers in images:
        # Each S2 key is received by exactly its matched S1 key here.
        assert len(receivers) >= 1
