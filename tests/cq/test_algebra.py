"""Unit tests for relational algebra trees and CQ conversions."""

import pytest

from repro.cq.algebra import (
    Join,
    Product,
    Project,
    Relation,
    SelectColumns,
    SelectConstant,
    evaluate_algebra,
    from_cq,
    to_cq,
    validate,
    width,
)
from repro.cq.evaluation import evaluate
from repro.cq.parser import parse_query
from repro.errors import QuerySyntaxError, TypecheckError
from repro.relational import DatabaseInstance, Value, random_instance, relation, schema


@pytest.fixture
def s():
    return schema(
        relation("R", [("a", "T"), ("b", "U")], key=["a"]),
        relation("S", [("c", "U"), ("d", "T")], key=["c"]),
    )


@pytest.fixture
def inst(s):
    return DatabaseInstance.from_rows(
        s,
        {
            "R": [
                (Value("T", 1), Value("U", 10)),
                (Value("T", 2), Value("U", 20)),
            ],
            "S": [
                (Value("U", 10), Value("T", 1)),
                (Value("U", 20), Value("T", 9)),
            ],
        },
    )


def test_width_and_validate(s):
    expr = Project(Join(Relation("R"), Relation("S"), ((1, 0),)), (0, 3))
    assert width(expr, s) == 2
    assert validate(expr, s) == 2


def test_validate_rejects_bad_column(s):
    with pytest.raises(TypecheckError):
        validate(Project(Relation("R"), (5,)), s)
    with pytest.raises(TypecheckError):
        validate(SelectColumns(Relation("R"), 0, 9), s)
    with pytest.raises(TypecheckError):
        validate(Relation("Z"), s)


def test_evaluate_scan_and_project(s, inst):
    rows = evaluate_algebra(Project(Relation("R"), (0,)), inst)
    assert rows == frozenset({(Value("T", 1),), (Value("T", 2),)})


def test_evaluate_select_constant(s, inst):
    expr = SelectConstant(Relation("R"), 1, Value("U", 10))
    rows = evaluate_algebra(expr, inst)
    assert rows == frozenset({(Value("T", 1), Value("U", 10))})


def test_evaluate_select_columns(s, inst):
    expr = SelectColumns(Join(Relation("R"), Relation("S"), ((1, 0),)), 0, 3)
    rows = evaluate_algebra(expr, inst)
    assert len(rows) == 1  # only the (1, 10) ⋈ (10, 1) combo has a == d


def test_evaluate_product_and_join(s, inst):
    product = evaluate_algebra(Product(Relation("R"), Relation("S")), inst)
    assert len(product) == 4
    joined = evaluate_algebra(Join(Relation("R"), Relation("S"), ((1, 0),)), inst)
    assert len(joined) == 2


def test_from_cq_matches_evaluator(s):
    queries = [
        "Q(X, D) :- R(X, Y), S(C, D), Y = C.",
        "Q(X) :- R(X, Y), Y = U:10.",
        "Q(X, X) :- R(X, Y).",
    ]
    for seed in range(3):
        inst = random_instance(s, rows_per_relation=6, seed=seed)
        for text in queries:
            q = parse_query(text)
            expr = from_cq(q)
            assert evaluate_algebra(expr, inst) == frozenset(
                evaluate(q, inst).rows
            )


def test_from_cq_rejects_free_head_constant(s):
    q = parse_query("Q(U:5, X) :- R(X, Y).")
    with pytest.raises(QuerySyntaxError):
        from_cq(q)


def test_from_cq_head_constant_with_selection(s, inst):
    q = parse_query("Q(U:10, X) :- R(X, Y), Y = U:10.")
    expr = from_cq(q)
    assert evaluate_algebra(expr, inst) == frozenset(evaluate(q, inst).rows)


def test_to_cq_round_trip(s):
    """Algebra → CQ preserves semantics (the paper's expressibility claim)."""
    expressions = [
        Project(Relation("R"), (1, 0)),
        SelectConstant(Relation("R"), 1, Value("U", 10)),
        Project(Join(Relation("R"), Relation("S"), ((1, 0),)), (0, 3)),
        SelectColumns(Product(Relation("R"), Relation("S")), 0, 3),
    ]
    for seed in range(3):
        inst = random_instance(s, rows_per_relation=5, seed=seed)
        for expr in expressions:
            q = to_cq(expr, s)
            assert frozenset(evaluate(q, inst).rows) == evaluate_algebra(expr, inst)


def test_cq_algebra_cq_round_trip_equivalence(s):
    q = parse_query("Q(X, D) :- R(X, Y), S(C, D), Y = C.")
    back = to_cq(from_cq(q), s, view_name="Q")
    from repro.cq.homomorphism import are_equivalent

    assert are_equivalent(q, back, s)
