"""Differential parity suite for the pluggable evaluation backends.

Every registered backend must return row-identical answers on every
query/instance pair — the naive enumerator is the oracle.  The families
below cover the shapes that have historically disagreed: acyclic
(chain/star) vs cyclic queries, constants in body positions, repeated
relation occurrences, and empty relations.  A final regression pins the
router's dispatch rule to :func:`repro.cq.hypergraph.is_alpha_acyclic`.
"""

import pytest

from repro.cq.backends import available_backends, get_backend, resolve_backend
from repro.cq.backends.base import synthesize_view_schema
from repro.cq.evaluation import evaluate
from repro.cq.hypergraph import is_alpha_acyclic
from repro.cq.syntax import Atom, ConjunctiveQuery, Constant, Variable
from repro.relational import DatabaseInstance, Value, random_instance
from repro.workloads import (
    chain_query,
    cycle_query,
    edge_schema,
    random_graph_instance,
    random_identity_join_query,
    random_query,
    star_query,
)
from repro.workloads.schema_gen import random_keyed_schema

BACKENDS = ("naive", "indexed", "bitset", "auto")


def assert_parity(query, instance):
    """All backends produce the oracle's rows, at and below the dispatcher."""
    view_schema = synthesize_view_schema(query, instance)
    oracle = get_backend("naive").evaluate(query, instance, view_schema).rows
    for name in BACKENDS:
        direct = get_backend(name).evaluate(query, instance, view_schema)
        assert direct.rows == oracle, f"backend {name!r} disagrees with naive"
        routed = evaluate(query, instance, view_schema, backend=name)
        assert routed.rows == oracle, f"dispatch via {name!r} disagrees"
    return oracle


def test_registry_lists_all_backends():
    assert set(BACKENDS) <= set(available_backends())


@pytest.mark.parametrize("length", [1, 2, 4])
def test_chain_queries(length):
    inst = random_graph_instance(nodes=12, edges=40, seed=length)
    q = chain_query(length)
    assert is_alpha_acyclic(q)
    assert_parity(q, inst)


@pytest.mark.parametrize("rays", [1, 3, 5])
def test_star_queries(rays):
    inst = random_graph_instance(nodes=10, edges=35, seed=rays)
    q = star_query(rays)
    assert_parity(q, inst)


@pytest.mark.parametrize("length", [3, 4, 5])
def test_cycle_queries(length):
    inst = random_graph_instance(nodes=8, edges=28, seed=length)
    q = cycle_query(length)
    assert not is_alpha_acyclic(q)
    assert_parity(q, inst)


def test_triangle_join_with_projection():
    # A cyclic query whose head exports only part of the triangle; the
    # bitset fallback path must re-check every equality at join time.
    inst = random_graph_instance(nodes=7, edges=24, seed=11)
    x, y, z = Variable("x"), Variable("y"), Variable("z")
    q = ConjunctiveQuery(
        Atom("Q", (x, z)),
        [Atom("E", (x, y)), Atom("E", (y, z)), Atom("E", (z, x))],
    )
    assert not is_alpha_acyclic(q)
    assert_parity(q, inst)


@pytest.mark.parametrize("seed", range(12))
def test_random_queries(seed):
    schema = random_keyed_schema(seed, ["A", "B"], n_relations=2, max_arity=3)
    q = random_query(schema, seed=seed, max_atoms=3)
    inst = random_instance(schema, rows_per_relation=5, seed=seed)
    assert_parity(q, inst)


@pytest.mark.parametrize("seed", range(8))
def test_random_identity_join_queries(seed):
    # Repeated relation occurrences with same-column joins (Lemma 2 class).
    schema = random_keyed_schema(seed, ["A"], n_relations=1, max_arity=3)
    q = random_identity_join_query(schema, seed=seed, max_atoms=3)
    inst = random_instance(schema, rows_per_relation=4, seed=seed)
    assert_parity(q, inst)


@pytest.mark.parametrize("token", [0, 1, 99])
def test_queries_with_constants(token):
    inst = random_graph_instance(nodes=6, edges=20, seed=token)
    c = Constant(Value("Node", token))
    x, y = Variable("x"), Variable("y")
    q = ConjunctiveQuery(
        Atom("Q", (x, y)), [Atom("E", (c, x)), Atom("E", (x, y))]
    )
    assert_parity(q, inst)


def test_constant_in_head():
    inst = random_graph_instance(nodes=6, edges=18, seed=2)
    c = Constant(Value("Node", 3))
    x = Variable("x")
    q = ConjunctiveQuery(Atom("Q", (c, x)), [Atom("E", (x, x))])
    assert_parity(q, inst)


def test_empty_relations():
    q = chain_query(3)
    rows = assert_parity(q, DatabaseInstance(edge_schema()))
    assert rows == frozenset()


def test_inconsistent_equalities_empty_everywhere():
    inst = random_graph_instance(nodes=5, edges=15, seed=7)
    x, y = Variable("x"), Variable("y")
    c0, c1 = Constant(Value("Node", 0)), Constant(Value("Node", 1))
    q = ConjunctiveQuery(
        Atom("Q", (x,)), [Atom("E", (x, y))], [(c0, c1)]
    )
    rows = assert_parity(q, inst)
    assert rows == frozenset()


def test_repeated_rows_and_self_loops():
    # Self-loops exercise repeated-variable positions within one atom.
    rows = [
        (Value("Node", 0), Value("Node", 0)),
        (Value("Node", 0), Value("Node", 1)),
        (Value("Node", 1), Value("Node", 0)),
    ]
    inst = DatabaseInstance.from_rows(edge_schema(), {"E": rows})
    x = Variable("x")
    q = ConjunctiveQuery(Atom("Q", (x,)), [Atom("E", (x, x))])
    oracle = assert_parity(q, inst)
    assert oracle == frozenset({(Value("Node", 0),)})


# --------------------------------------------------------------- routing


def _routed_name(query, instance):
    return resolve_backend("auto").select(query, instance).name


@pytest.mark.parametrize(
    "make_query",
    [lambda: chain_query(3), lambda: star_query(4), lambda: cycle_query(4)],
)
def test_router_picks_yannakakis_exactly_on_acyclic(make_query):
    """The router dispatches to the bitset Yannakakis engine iff the
    query is α-acyclic, and to the indexed fallback otherwise."""
    q = make_query()
    inst = random_graph_instance(nodes=8, edges=25, seed=1)
    expected = "bitset" if is_alpha_acyclic(q) else "indexed"
    assert _routed_name(q, inst) == expected


@pytest.mark.parametrize("seed", range(20))
def test_router_agrees_with_is_alpha_acyclic_on_random_queries(seed):
    schema = random_keyed_schema(seed, ["A", "B"], n_relations=2, max_arity=3)
    q = random_query(schema, seed=seed, max_atoms=4)
    inst = random_instance(schema, rows_per_relation=3, seed=seed)
    expected = "bitset" if is_alpha_acyclic(q) else "indexed"
    assert _routed_name(q, inst) == expected
