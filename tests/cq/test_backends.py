"""Unit tests for the evaluation-backend subsystem itself.

Parity of answers across backends lives in ``test_backend_parity.py``;
here we pin the registry, default selection, plan compilation and
caching, dispatch observability, and the small-relation scan fast path.
"""

import pytest

from repro.cq import backends
from repro.cq.backends.plan import compile_plan
from repro.cq.evaluation import evaluate
from repro.cq.indexing import SMALL_RELATION_ROWS, counters
from repro.cq.syntax import Atom, ConjunctiveQuery, Variable
from repro.errors import EvaluationError
from repro.obs import metrics as _metrics
from repro.obs import tracing
from repro.relational import DatabaseInstance, Value
from repro.utils import memo
from repro.workloads import (
    chain_query,
    cycle_query,
    edge_schema,
    random_graph_instance,
)


# ---------------------------------------------------------------- registry


def test_get_backend_by_name():
    for name in ("naive", "indexed", "bitset", "auto"):
        assert backends.get_backend(name).name == name


def test_unknown_backend_raises_with_valid_set():
    with pytest.raises(EvaluationError, match="bitset"):
        backends.get_backend("vectorwise")


def test_default_backend_is_auto(monkeypatch):
    # Env-independent: the suite may itself run under REPRO_BACKEND.
    monkeypatch.delenv(backends.ENV_VAR, raising=False)
    monkeypatch.setattr(backends, "_default_name", None)
    assert backends.default_backend_name() == "auto"
    assert backends.resolve_backend().name == "auto"


def test_set_default_backend_round_trip():
    previous = backends.set_default_backend("bitset")
    try:
        assert backends.default_backend_name() == "bitset"
        assert backends.resolve_backend().name == "bitset"
        # Per-call override still beats the process default.
        assert backends.resolve_backend("naive").name == "naive"
    finally:
        backends.set_default_backend(previous)
    assert backends.default_backend_name() == previous


def test_set_default_backend_validates():
    before = backends.default_backend_name()
    with pytest.raises(EvaluationError):
        backends.set_default_backend("nope")
    assert backends.default_backend_name() == before


def test_env_var_selects_default(monkeypatch):
    monkeypatch.setenv(backends.ENV_VAR, "indexed")
    monkeypatch.setattr(backends, "_default_name", None)
    assert backends.default_backend_name() == "indexed"


def test_bad_env_var_raises_at_first_use(monkeypatch):
    monkeypatch.setenv(backends.ENV_VAR, "warp-drive")
    monkeypatch.setattr(backends, "_default_name", None)
    with pytest.raises(EvaluationError, match="warp-drive"):
        backends.default_backend_name()


# -------------------------------------------------------------------- plans


def test_plan_cache_returns_shared_instance():
    q = chain_query(3)
    assert compile_plan(q) is compile_plan(q)


def test_plan_marks_chain_acyclic():
    plan = compile_plan(chain_query(4))
    assert plan.acyclic
    assert plan.links is not None and len(plan.links) == 3
    assert plan.depth >= 1


def test_plan_marks_cycle_cyclic():
    plan = compile_plan(cycle_query(4))
    assert not plan.acyclic
    assert plan.links is None
    assert plan.depth == -1


def test_plan_of_inconsistent_query():
    x = Variable("x")
    c0, c1 = Value("Node", 0), Value("Node", 1)
    from repro.cq.syntax import Constant

    q = ConjunctiveQuery(
        Atom("Q", (x,)), [Atom("E", (x, x))],
        [(Constant(c0), Constant(c1))],
    )
    assert compile_plan(q).inconsistent


def test_router_cost_estimate_delegates():
    inst = random_graph_instance(nodes=10, edges=30, seed=0)
    q = chain_query(2)
    auto = backends.get_backend("auto")
    assert auto.cost_estimate(q, inst) == backends.get_backend(
        "bitset"
    ).cost_estimate(q, inst)


# ------------------------------------------------------------ observability


def test_dispatch_counter_increments():
    inst = random_graph_instance(nodes=6, edges=15, seed=3)
    q = chain_query(2)
    counter = _metrics.registry().counter("backend.dispatch.bitset")
    memo.memo("evaluate").clear()  # dispatches count on memo misses only
    before = counter.value
    evaluate(q, inst, backend="bitset")
    assert counter.value == before + 1
    # A memo hit answers before any backend machinery runs.
    evaluate(q, inst, backend="bitset")
    assert counter.value == before + 1


def test_router_dispatch_counts_resolved_backend():
    inst = random_graph_instance(nodes=6, edges=15, seed=4)
    q = cycle_query(3)
    counter = _metrics.registry().counter("backend.dispatch.indexed")
    memo.memo("evaluate").clear()
    before = counter.value
    evaluate(q, inst, backend="auto")  # cyclic → routed to indexed
    assert counter.value == before + 1


def test_evaluate_span_names_resolved_backend():
    inst = random_graph_instance(nodes=6, edges=15, seed=5)
    q = chain_query(2)
    was = tracing.set_enabled(True)
    tracing.start_trace()
    try:
        memo.memo("evaluate").clear()  # force a real (spanned) evaluation
        evaluate(q, inst, backend="bitset")
        names = {record.name for record in tracing.drain()}
    finally:
        tracing.set_enabled(was)
    assert "evaluate.bitset" in names


def test_memo_keys_separate_backends():
    inst = random_graph_instance(nodes=6, edges=15, seed=6)
    q = chain_query(2)
    cache = memo.memo("evaluate")
    cache.clear()
    stats = cache.stats
    misses = stats.misses
    evaluate(q, inst, backend="naive")
    evaluate(q, inst, backend="indexed")
    # Different backends never share a memo entry...
    assert stats.misses == misses + 2
    # ...and a repeat with the same backend hits.
    hits = stats.hits
    evaluate(q, inst, backend="naive")
    assert stats.hits == hits + 1


# ------------------------------------------------- small-relation fast path


def test_small_relations_scan_without_building_indexes():
    from repro.cq.indexing import candidate_rows

    rows = [
        (Value("Node", i), Value("Node", i + 1))
        for i in range(SMALL_RELATION_ROWS)
    ]
    inst = DatabaseInstance.from_rows(edge_schema(), {"E": rows})
    relation = inst.relation("E")
    builds = counters.index_builds
    matches = candidate_rows(relation, [(0, Value("Node", 2))])
    assert set(matches) == {(Value("Node", 2), Value("Node", 3))}
    assert counters.index_builds == builds


def test_large_relations_still_use_indexes():
    from repro.cq.indexing import candidate_rows

    rows = [
        (Value("Node", i), Value("Node", i + 1))
        for i in range(SMALL_RELATION_ROWS + 1)
    ]
    inst = DatabaseInstance.from_rows(edge_schema(), {"E": rows})
    relation = inst.relation("E")
    builds = counters.index_builds
    matches = candidate_rows(relation, [(0, Value("Node", 2))])
    assert set(matches) == {(Value("Node", 2), Value("Node", 3))}
    assert counters.index_builds == builds + 1


# ------------------------------------------------------------ worker toggle


def test_worker_env_ships_backend_selection():
    from repro.core.search import _worker_env

    previous = backends.set_default_backend("bitset")
    try:
        assert _worker_env("proc-test").backend == "bitset"
    finally:
        backends.set_default_backend(previous)
