"""Unit tests for canonical databases and labelled nulls."""

from repro.cq.canonical import (
    canonical_database,
    instantiate_nulls,
    is_null,
    null_value,
)
from repro.cq.evaluation import evaluate
from repro.cq.parser import parse_query
from repro.relational import Value, relation, schema


def make_schema():
    return schema(
        relation("R", [("a", "T"), ("b", "U")], key=["a"]),
        relation("S", [("c", "U"), ("d", "T")], key=["c"]),
    )


def test_null_values_are_typed_and_detectable():
    n = null_value("T", "x")
    assert n.type_name == "T"
    assert is_null(n)
    assert not is_null(Value("T", 1))
    assert not is_null(Value("T", (1, 2)))


def test_canonical_database_one_row_per_atom():
    s = make_schema()
    q = parse_query("Q(X) :- R(X, Y), S(C, D).")
    canonical = canonical_database(q, s)
    assert canonical is not None
    assert len(canonical.instance.relation("R")) == 1
    assert len(canonical.instance.relation("S")) == 1


def test_canonical_database_merges_equated_variables():
    s = make_schema()
    q = parse_query("Q(X) :- R(X, Y), S(C, D), Y = C.")
    canonical = canonical_database(q, s)
    r_row = next(iter(canonical.instance.relation("R")))
    s_row = next(iter(canonical.instance.relation("S")))
    assert r_row[1] == s_row[0]


def test_canonical_database_keeps_constants():
    s = make_schema()
    q = parse_query("Q(X) :- R(X, Y), Y = U:5.")
    canonical = canonical_database(q, s)
    row = next(iter(canonical.instance.relation("R")))
    assert row[1] == Value("U", 5)
    assert is_null(row[0])


def test_canonical_database_head_row():
    s = make_schema()
    q = parse_query("Q(U:5, X) :- R(X, Y).")
    canonical = canonical_database(q, s)
    assert canonical.head_row[0] == Value("U", 5)
    assert is_null(canonical.head_row[1])


def test_canonical_database_inconsistent_returns_none():
    s = make_schema()
    q = parse_query("Q(X) :- R(X, Y), Y = U:1, Y = U:2.")
    assert canonical_database(q, s) is None


def test_query_answers_own_canonical_database():
    """The defining property: the head row is in q(canonical(q))."""
    s = make_schema()
    for text in [
        "Q(X) :- R(X, Y), S(C, D), Y = C.",
        "Q(X, D) :- R(X, Y), S(C, D).",
        "Q(X) :- R(X, Y), Y = U:5.",
    ]:
        q = parse_query(text)
        canonical = canonical_database(q, s)
        answers = evaluate(q, canonical.instance)
        assert canonical.head_row in answers.rows


def test_instantiate_nulls_distinct_fresh_values():
    s = make_schema()
    q = parse_query("Q(X) :- R(X, Y), R(X2, Y2), S(C, D), Y = C.")
    canonical = canonical_database(q, s)
    concrete = instantiate_nulls(canonical.instance)
    assert not any(is_null(v) for v in concrete.values())
    # Distinct nulls map to distinct values: row counts are preserved.
    assert concrete.total_rows() == canonical.instance.total_rows()


def test_instantiate_nulls_preserves_constants():
    s = make_schema()
    q = parse_query("Q(X) :- R(X, Y), Y = U:5.")
    canonical = canonical_database(q, s)
    concrete = instantiate_nulls(canonical.instance)
    assert Value("U", 5) in concrete.values()
