"""Unit tests for certain answers over incomplete databases."""

import pytest

from repro.cq.canonical import null_value
from repro.cq.certain import certain_answers, possible_answers
from repro.cq.chase import egds_of_schema
from repro.cq.parser import parse_query
from repro.relational import (
    DatabaseInstance,
    InclusionDependency,
    Value,
    relation,
    schema,
)


@pytest.fixture
def s():
    return schema(
        relation("R", [("k", "K"), ("v", "V")], key=["k"]),
        relation("S", [("x", "K"), ("y", "V")], key=["x"]),
    )


def test_null_free_rows_are_certain(s):
    table = DatabaseInstance.from_rows(
        s,
        {
            "R": [
                (Value("K", 1), Value("V", 10)),
                (Value("K", 2), null_value("V", "n")),
            ]
        },
    )
    q = parse_query("Q(X, Y) :- R(X, Y).")
    certain = certain_answers(q, table)
    assert certain.rows == {(Value("K", 1), Value("V", 10))}


def test_possible_includes_null_patterns(s):
    table = DatabaseInstance.from_rows(
        s, {"R": [(Value("K", 2), null_value("V", "n"))]}
    )
    q = parse_query("Q(X, Y) :- R(X, Y).")
    possible = possible_answers(q, table)
    assert len(possible) == 1
    certain = certain_answers(q, table)
    assert certain.is_empty()


def test_egd_resolution_makes_answers_certain(s):
    """The key EGD resolves the null to a constant, making the row certain."""
    table = DatabaseInstance.from_rows(
        s,
        {
            "R": [
                (Value("K", 1), null_value("V", "n")),
                (Value("K", 1), Value("V", 7)),
            ]
        },
    )
    q = parse_query("Q(X, Y) :- R(X, Y).")
    certain = certain_answers(q, table, egds=egds_of_schema(s))
    assert certain.rows == {(Value("K", 1), Value("V", 7))}


def test_join_through_shared_null(s):
    """A join matching on the SAME null is certain (the null denotes one
    value in every completion)."""
    shared = null_value("V", "shared")
    table = DatabaseInstance.from_rows(
        s,
        {
            "R": [(Value("K", 1), shared)],
            "S": [(Value("K", 9), shared)],
        },
    )
    q = parse_query("Q(X, X2) :- R(X, Y), S(X2, Y2), Y = Y2.")
    certain = certain_answers(q, table)
    assert certain.rows == {(Value("K", 1), Value("K", 9))}


def test_join_through_distinct_nulls_not_certain(s):
    table = DatabaseInstance.from_rows(
        s,
        {
            "R": [(Value("K", 1), null_value("V", "a"))],
            "S": [(Value("K", 9), null_value("V", "b"))],
        },
    )
    q = parse_query("Q(X, X2) :- R(X, Y), S(X2, Y2), Y = Y2.")
    certain = certain_answers(q, table)
    assert certain.is_empty()


def test_inconsistent_table_returns_none(s):
    table = DatabaseInstance.from_rows(
        s,
        {
            "R": [
                (Value("K", 1), Value("V", 7)),
                (Value("K", 1), Value("V", 8)),
            ]
        },
    )
    q = parse_query("Q(X) :- R(X, Y).")
    assert certain_answers(q, table, egds=egds_of_schema(s)) is None
    assert possible_answers(q, table, egds=egds_of_schema(s)) is None


def test_tgd_completion_contributes_certain_joins(s):
    """An inclusion dependency materialises the S-witness; the join on the
    shared key column is then certain even though S's y is unknown."""
    inc = InclusionDependency("R", ["k"], "S", ["x"])
    table = DatabaseInstance.from_rows(
        s, {"R": [(Value("K", 1), Value("V", 10))]}
    )
    q = parse_query("Q(X) :- R(X, Y), S(X2, Y2), X = X2.")
    certain = certain_answers(
        q, table, egds=egds_of_schema(s), inclusions=[inc]
    )
    assert certain.rows == {(Value("K", 1),)}


def test_view_schema_respected(s):
    view = relation("V", [("k", "K")])
    table = DatabaseInstance.from_rows(
        s, {"R": [(Value("K", 1), Value("V", 10))]}
    )
    q = parse_query("V(X) :- R(X, Y).")
    certain = certain_answers(q, table, view_schema=view)
    assert certain.schema is view
