"""Unit tests for the chase (EGDs and inclusion-dependency TGDs)."""

import pytest

from repro.cq.canonical import is_null, null_value
from repro.cq.chase import (
    FDEgd,
    chase,
    chase_egds,
    egd_of_fd,
    egd_of_key,
    egds_of_schema,
    satisfies_egds,
    weakly_acyclic,
)
from repro.errors import ChaseError, ChaseFailure, DependencyError
from repro.relational import (
    DatabaseInstance,
    FunctionalDependency,
    InclusionDependency,
    KeyDependency,
    Value,
    relation,
    schema,
)


@pytest.fixture
def s():
    return schema(
        relation("R", [("a", "T"), ("b", "U"), ("c", "U")], key=["a"]),
        relation("S", [("x", "T"), ("y", "U")], key=["x"]),
    )


def r_row(a, b, c):
    return (Value("T", a), Value("U", b), Value("U", c))


def test_egd_of_key_positions(s):
    egd = egd_of_key(s, KeyDependency("R", ["a"]))
    assert egd == FDEgd("R", (0,), (1, 2))


def test_egds_of_schema(s):
    egds = egds_of_schema(s)
    assert {e.relation for e in egds} == {"R", "S"}


def test_egd_of_fd(s):
    fd = FunctionalDependency.of_relation(s.relation("R"), ["b"], ["c"])
    egd = egd_of_fd(s, fd)
    assert egd == FDEgd("R", (1,), (2,))


def test_egd_of_cross_relation_fd_rejected(s):
    fd = FunctionalDependency(
        [s.relation("R").qualify("a")], [s.relation("S").qualify("y")]
    )
    with pytest.raises(DependencyError):
        egd_of_fd(s, fd)


def test_chase_merges_nulls(s):
    n1, n2 = null_value("U", "n1"), null_value("U", "n2")
    inst = DatabaseInstance.from_rows(
        s,
        {"R": [(Value("T", 1), n1, n1), (Value("T", 1), n2, Value("U", 9))]},
    )
    result = chase_egds(inst, egds_of_schema(s))
    assert len(result.instance.relation("R")) == 1
    row = next(iter(result.instance.relation("R")))
    # c merged with the constant 9, and b's nulls merged together with it.
    assert row[2] == Value("U", 9)
    assert result.rename(n1) == result.rename(n2)


def test_chase_null_resolves_to_constant(s):
    n = null_value("U", "n")
    inst = DatabaseInstance.from_rows(
        s, {"R": [r_row(1, 5, 7), (Value("T", 1), n, Value("U", 7))]}
    )
    result = chase_egds(inst, egds_of_schema(s))
    assert result.rename(n) == Value("U", 5)
    assert satisfies_egds(result.instance, egds_of_schema(s))


def test_chase_failure_on_distinct_constants(s):
    inst = DatabaseInstance.from_rows(
        s, {"R": [r_row(1, 5, 7), r_row(1, 6, 7)]}
    )
    with pytest.raises(ChaseFailure):
        chase_egds(inst, egds_of_schema(s))


def test_chase_fixpoint_cascades(s):
    # Equating b-nulls forces a second round through the FD b -> c.
    fd_egd = FDEgd("R", (1,), (2,))
    n1, n2, m1, m2 = (
        null_value("U", "n1"),
        null_value("U", "n2"),
        null_value("U", "m1"),
        null_value("U", "m2"),
    )
    inst = DatabaseInstance.from_rows(
        s,
        {
            "R": [
                (Value("T", 1), n1, m1),
                (Value("T", 1), n2, m2),
                (Value("T", 2), n2, Value("U", 42)),
            ]
        },
    )
    result = chase_egds(inst, list(egds_of_schema(s)) + [fd_egd])
    assert result.rename(m1) == Value("U", 42)
    assert result.rename(m2) == Value("U", 42)


def test_chase_no_violations_is_identity(s):
    inst = DatabaseInstance.from_rows(s, {"R": [r_row(1, 5, 7), r_row(2, 5, 7)]})
    result = chase_egds(inst, egds_of_schema(s))
    assert result.instance == inst
    assert result.egd_rounds == 0


def test_weak_acyclicity_accepts_paper_inclusions():
    from repro.workloads import paper_schema_1

    s1, incs = paper_schema_1()
    assert weakly_acyclic(s1, incs)


def test_weak_acyclicity_rejects_growing_cycle():
    s2 = schema(relation("R", [("a", "T"), ("b", "T")], key=["a"]))
    # R[b] ⊆ R[a]: each new b must appear as some a, generating fresh b's.
    inc = InclusionDependency("R", ["b"], "R", ["a"])
    assert not weakly_acyclic(s2, [inc])


def test_chase_raises_on_non_weakly_acyclic():
    s2 = schema(relation("R", [("a", "T"), ("b", "T")], key=["a"]))
    inc = InclusionDependency("R", ["b"], "R", ["a"])
    inst = DatabaseInstance.from_rows(
        s2, {"R": [(Value("T", 1), Value("T", 2))]}
    )
    with pytest.raises(ChaseError):
        chase(inst, inclusions=[inc])


def test_chase_tgd_adds_witness_tuples(s):
    inc = InclusionDependency("R", ["a"], "S", ["x"])
    inst = DatabaseInstance.from_rows(s, {"R": [r_row(1, 5, 7)]})
    result = chase(inst, egds=egds_of_schema(s), inclusions=[inc])
    assert len(result.instance.relation("S")) == 1
    srow = next(iter(result.instance.relation("S")))
    assert srow[0] == Value("T", 1)
    assert is_null(srow[1])
    assert result.tgd_steps == 1


def test_chase_tgd_respects_existing_witness(s):
    inc = InclusionDependency("R", ["a"], "S", ["x"])
    inst = DatabaseInstance.from_rows(
        s,
        {"R": [r_row(1, 5, 7)], "S": [(Value("T", 1), Value("U", 2))]},
    )
    result = chase(inst, egds=egds_of_schema(s), inclusions=[inc])
    assert len(result.instance.relation("S")) == 1
    assert result.tgd_steps == 0


def test_chase_interleaves_egds_and_tgds(s):
    inc = InclusionDependency("R", ["a"], "S", ["x"])
    n = null_value("U", "n")
    inst = DatabaseInstance.from_rows(
        s,
        {"R": [(Value("T", 1), n, Value("U", 7)), r_row(1, 5, 7)]},
    )
    result = chase(inst, egds=egds_of_schema(s), inclusions=[inc])
    # EGD merged the R rows; TGD added the S witness.
    assert len(result.instance.relation("R")) == 1
    assert len(result.instance.relation("S")) == 1
    assert satisfies_egds(result.instance, egds_of_schema(s))
    assert inc.satisfied_by(result.instance)


def test_naive_chase_agrees_with_indexed(s):
    """Ablation baseline produces the same fixpoint as the indexed chase."""
    from repro.cq.chase import chase_egds_naive

    n1, n2 = null_value("U", "x1"), null_value("U", "x2")
    inst = DatabaseInstance.from_rows(
        s,
        {
            "R": [
                (Value("T", 1), n1, Value("U", 9)),
                (Value("T", 1), n2, Value("U", 9)),
                (Value("T", 2), Value("U", 5), n1),
            ]
        },
    )
    indexed = chase_egds(inst, egds_of_schema(s))
    naive = chase_egds_naive(inst, egds_of_schema(s))
    assert indexed.instance == naive.instance


def test_naive_chase_fails_identically(s):
    from repro.cq.chase import chase_egds_naive

    inst = DatabaseInstance.from_rows(
        s, {"R": [r_row(1, 5, 7), r_row(1, 6, 7)]}
    )
    with pytest.raises(ChaseFailure):
        chase_egds_naive(inst, egds_of_schema(s))


def test_chase_succeeds_when_fixpoint_lands_exactly_on_the_cap(s):
    # Regression: ``max_steps`` counts *progressing* rounds.  This chase
    # needs exactly one TGD round; the old cap raised on the follow-up
    # round that merely observed the fixpoint, rejecting a chase that had
    # terminated within budget.
    inc = InclusionDependency("R", ["a"], "S", ["x"])
    inst = DatabaseInstance.from_rows(s, {"R": [r_row(1, 5, 7)]})
    result = chase(inst, inclusions=[inc], max_steps=1)
    assert result.tgd_steps == 1
    assert inc.satisfied_by(result.instance)


def test_chase_cap_still_trips_one_round_short():
    three = schema(
        relation("R", [("a", "T")], key=["a"]),
        relation("S", [("x", "T")], key=["x"]),
        relation("W", [("t", "T")], key=["t"]),
    )
    # Listed so the S -> W hop cannot fire until the round after R -> S
    # populates S: the chase needs exactly two progressing rounds.
    chain = [
        InclusionDependency("S", ["x"], "W", ["t"]),
        InclusionDependency("R", ["a"], "S", ["x"]),
    ]
    inst = DatabaseInstance.from_rows(three, {"R": [(Value("T", 1),)]})
    result = chase(inst, inclusions=chain, max_steps=2)
    assert result.tgd_steps == 2
    with pytest.raises(ChaseError, match="did not terminate"):
        chase(inst, inclusions=chain, max_steps=1)
