"""Unit tests for query composition by unfolding."""

import pytest

from repro.cq.composition import compose_views, identity_view, unfold
from repro.cq.equality import equality_structure
from repro.cq.evaluation import evaluate
from repro.cq.parser import parse_query
from repro.errors import MappingError
from repro.relational import (
    DatabaseInstance,
    RelationInstance,
    Value,
    random_instance,
    relation,
    schema,
)


@pytest.fixture
def source():
    return schema(
        relation("A", [("a1", "T"), ("a2", "U")], key=["a1"]),
        relation("B", [("b1", "U"), ("b2", "T")], key=["b1"]),
    )


@pytest.fixture
def mid():
    return schema(
        relation("M", [("m1", "T"), ("m2", "U")], key=["m1"]),
        relation("N", [("n1", "U")], key=["n1"]),
    )


@pytest.fixture
def views(source):
    """Views defining the mid schema over the source schema."""
    return {
        "M": parse_query("M(X, Y) :- A(X, Y)."),
        "N": parse_query("N(Y) :- B(Y, Z)."),
    }


def apply_views(views, mid, instance):
    from repro.cq.evaluation import evaluate

    return DatabaseInstance(
        mid,
        {
            name: evaluate(q, instance, mid.relation(name))
            for name, q in views.items()
        },
    )


def test_unfold_agrees_with_pointwise_composition(source, mid, views):
    outer = parse_query("Q(X) :- M(X, Y), N(Y2), Y = Y2.")
    composed = unfold(outer, views)
    # Composed query references only source relations.
    assert set(composed.body_relations()) <= {"A", "B"}
    for seed in range(4):
        d = random_instance(source, rows_per_relation=6, seed=seed)
        direct = evaluate(composed, d)
        via_mid = evaluate(outer, apply_views(views, mid, d))
        assert direct.rows == via_mid.rows


def test_unfold_missing_view_raises(views):
    outer = parse_query("Q(X) :- Unknown(X).")
    with pytest.raises(MappingError):
        unfold(outer, views)


def test_unfold_arity_mismatch_raises(views):
    outer = parse_query("Q(X) :- M(X).")
    with pytest.raises(MappingError):
        unfold(outer, views)


def test_unfold_with_view_constants(source, mid):
    views = {
        "M": parse_query("M(X, U:5) :- A(X, Y)."),
        "N": parse_query("N(Y) :- B(Y, Z)."),
    }
    outer = parse_query("Q(X, Y) :- M(X, Y).")
    composed = unfold(outer, views)
    for seed in range(3):
        d = random_instance(source, rows_per_relation=4, seed=seed)
        assert (
            evaluate(composed, d).rows
            == evaluate(outer, apply_views(views, mid, d)).rows
        )


def test_unfold_constant_clash_is_unsatisfiable(source, mid):
    """Equating two view columns that export different constants."""
    views = {
        "M": parse_query("M(X, U:5) :- A(X, Y)."),
        "N": parse_query("N(U:6) :- B(Y, Z).").with_head(
            parse_query("N(U:6) :- B(Y, Z).").head
        ),
    }
    outer = parse_query("Q(Y) :- M(X, Y), N(Y2), Y = Y2.")
    composed = unfold(outer, views)
    structure = equality_structure(composed)
    assert structure.inconsistent
    for seed in range(2):
        d = random_instance(source, rows_per_relation=4, seed=seed)
        assert evaluate(composed, d).is_empty()


def test_unfold_repeated_outer_atom(source, mid, views):
    outer = parse_query("Q(X, X2) :- M(X, Y), M(X2, Y2), Y = Y2.")
    composed = unfold(outer, views)
    for seed in range(3):
        d = random_instance(source, rows_per_relation=5, seed=seed)
        assert (
            evaluate(composed, d).rows
            == evaluate(outer, apply_views(views, mid, d)).rows
        )


def test_unfold_head_constants_pass_through(source, mid, views):
    outer = parse_query("Q(T:9, X) :- M(X, Y).")
    composed = unfold(outer, views)
    d = random_instance(source, rows_per_relation=4, seed=1)
    assert (
        evaluate(composed, d).rows
        == evaluate(outer, apply_views(views, mid, d)).rows
    )


def test_compose_views_family(source, mid, views):
    outer_views = {
        "A2": parse_query("A2(X) :- M(X, Y), N(Y2), Y = Y2."),
    }
    composed = compose_views(outer_views, views)
    assert set(composed) == {"A2"}
    assert set(composed["A2"].body_relations()) <= {"A", "B"}


def test_identity_view_shape():
    q = identity_view("R", 3)
    assert q.view_name == "R"
    assert q.body_relations() == ("R",)
    assert q.head.terms == q.body[0].terms


def test_unfold_identity_is_identity(source, views, mid):
    for name, view in views.items():
        rel = mid.relation(name)
        composed = unfold(identity_view(name, rel.arity), views)
        d = random_instance(source, rows_per_relation=4, seed=2)
        assert (
            evaluate(composed, d).rows
            == evaluate(view, d).rows
        )
