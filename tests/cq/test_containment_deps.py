"""Unit tests for CQ containment/equivalence under dependencies."""

import pytest

from repro.cq.containment_deps import (
    are_equivalent_under,
    are_equivalent_under_keys,
    chased_canonical,
    is_contained_under,
    is_contained_under_keys,
)
from repro.cq.chase import egds_of_schema
from repro.cq.homomorphism import are_equivalent, is_contained_in
from repro.cq.parser import parse_query
from repro.relational import InclusionDependency, relation, schema


@pytest.fixture
def s():
    return schema(
        relation("R", [("a", "T"), ("b", "U")], key=["a"]),
        relation("S", [("x", "T"), ("y", "U")], key=["x"]),
    )


def test_key_makes_self_join_collapse(s):
    """R(X,Y), R(X2,Y2) with X=X2: under the key, Y=Y2 is forced."""
    joined = parse_query("Q(Y, Y2) :- R(X, Y), R(X2, Y2), X = X2.")
    diagonal = parse_query("Q(Y, Y) :- R(X, Y).")
    # Without keys the queries differ...
    assert not are_equivalent(joined, diagonal, s)
    # ...with keys they coincide.
    assert are_equivalent_under_keys(joined, diagonal, s)


def test_containment_under_keys_strictly_weaker(s):
    pairs = parse_query("Q(Y, Y2) :- R(X, Y), R(X2, Y2), X = X2.")
    diagonal = parse_query("Q(Y, Y) :- R(X, Y).")
    # Plain containment: the key-sharing pair query is not contained in the
    # diagonal (nothing forces Y = Y2 without the key)...
    assert not is_contained_in(pairs, diagonal, s)
    # ...but the key of R forces it.
    assert is_contained_under_keys(pairs, diagonal, s)
    assert are_equivalent_under_keys(pairs, diagonal, s)


def test_plain_containment_implies_containment_under_deps(s):
    q1 = parse_query("Q(X) :- R(X, Y), S(C, D), Y = D.")
    q2 = parse_query("Q(X) :- R(X, Y).")
    assert is_contained_in(q1, q2, s)
    assert is_contained_under_keys(q1, q2, s)


def test_unsatisfiable_under_deps_contained_in_everything(s):
    # Two R-tuples forced to share a key but differ on b via constants.
    q1 = parse_query(
        "Q(X) :- R(X, Y), R(X2, Y2), X = X2, Y = U:1, Y2 = U:2."
    )
    q2 = parse_query("Q(X) :- R(X, Y), Y = U:99.")
    assert chased_canonical(q1, s, egds_of_schema(s)) is None
    assert is_contained_under_keys(q1, q2, s)
    # Without the key it is satisfiable, so containment fails.
    assert not is_contained_in(q1, q2, s)


def test_inconsistent_q2_contains_nothing_satisfiable(s):
    q1 = parse_query("Q(X) :- R(X, Y).")
    bottom = parse_query("Q(X) :- R(X, Y), Y = U:1, Y = U:2.")
    assert not is_contained_under_keys(q1, bottom, s)


def test_containment_under_inclusions(s):
    """R[a] ⊆ S[x] lets an S-atom be inferred from an R-atom."""
    inc = InclusionDependency("R", ["a"], "S", ["x"])
    q1 = parse_query("Q(X) :- R(X, Y).")
    q2 = parse_query("Q(X) :- R(X, Y), S(X2, Y2), X = X2.")
    egds = egds_of_schema(s)
    assert not is_contained_in(q1, q2, s)
    assert is_contained_under(q1, q2, s, egds, [inc])
    assert are_equivalent_under(q1, q2, s, egds, [inc])


def test_chased_canonical_renames_head(s):
    q = parse_query("Q(Y, Y2) :- R(X, Y), R(X2, Y2), X = X2.")
    chased = chased_canonical(q, s, egds_of_schema(s))
    assert chased is not None
    assert chased.head_row[0] == chased.head_row[1]


def test_equivalence_under_no_deps_is_plain_equivalence(s):
    q1 = parse_query("Q(X) :- R(X, Y).")
    q2 = parse_query("Q(X) :- R(X, Y), R(A, B).")
    assert are_equivalent_under(q1, q2, s, ()) == are_equivalent(q1, q2, s)
