"""Unit tests for equality classes (paper §2)."""

from repro.cq.equality import (
    EqualityStructure,
    equality_structure,
    induced_equalities,
    substitute_representatives,
)
from repro.cq.parser import parse_query
from repro.cq.syntax import Constant, Variable
from repro.relational.domain import Value


def test_closure_by_transitivity():
    q = parse_query("Q(X) :- R(X, Y), R(A, B), X = A, A = Y.")
    s = equality_structure(q)
    assert s.equivalent(Variable("X"), Variable("Y"))
    assert not s.equivalent(Variable("X"), Variable("B"))


def test_singletons_present():
    q = parse_query("Q(X) :- R(X, Y).")
    s = equality_structure(q)
    classes = s.variable_classes()
    assert frozenset({Variable("X")}) in classes
    assert frozenset({Variable("Y")}) in classes


def test_constant_pinning():
    q = parse_query("Q(X) :- R(X, Y), X = T:5.")
    s = equality_structure(q)
    assert s.constant_of(Variable("X")) == Value("T", 5)
    assert s.constant_of(Variable("Y")) is None


def test_constant_pinning_propagates_through_class():
    q = parse_query("Q(X) :- R(X, Y), X = Y, Y = T:5.")
    s = equality_structure(q)
    assert s.constant_of(Variable("X")) == Value("T", 5)


def test_inconsistent_two_constants():
    q = parse_query("Q(X) :- R(X, Y), X = T:1, X = T:2.")
    s = equality_structure(q)
    assert s.inconsistent


def test_consistent_same_constant_twice():
    q = parse_query("Q(X) :- R(X, Y), X = T:1, X = T:1.")
    assert not equality_structure(q).inconsistent


def test_substitute_representatives_merges_variables():
    q = parse_query("Q(X, Y) :- R(X, Z), S(Z2, Y), Z = Z2.")
    rewritten, structure = substitute_representatives(q)
    assert not structure.inconsistent
    assert rewritten.equalities == ()
    # The shared variable appears in both atoms now.
    z_terms = {rewritten.body[0].terms[1], rewritten.body[1].terms[0]}
    assert len(z_terms) == 1


def test_substitute_representatives_inlines_constants():
    q = parse_query("Q(X) :- R(X, Y), Y = U:3.")
    rewritten, _ = substitute_representatives(q)
    assert rewritten.body[0].terms[1] == Constant(Value("U", 3))


def test_substitute_representatives_rewrites_head():
    q = parse_query("Q(Y) :- R(X, Y), Y = U:3.")
    rewritten, _ = substitute_representatives(q)
    assert rewritten.head.terms[0] == Constant(Value("U", 3))


def test_resolve_is_deterministic():
    q = parse_query("Q(X) :- R(X, Y), R(A, B), X = A.")
    s = equality_structure(q)
    rep = s.resolve(Variable("X"))
    assert rep == s.resolve(Variable("A"))
    assert rep in (Variable("A"), Variable("X"))


def test_induced_equalities_full_closure():
    q = parse_query("Q(X) :- R(X, Y), R(A, B), X = A, A = Y.")
    induced = induced_equalities(q)
    # {X, A, Y} pairwise: 3 pairs.
    pairs = {frozenset({l.name, r.name}) for l, r in induced}
    assert pairs == {
        frozenset({"X", "A"}),
        frozenset({"X", "Y"}),
        frozenset({"A", "Y"}),
    }
