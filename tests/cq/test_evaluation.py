"""Unit tests for query evaluation (hash-join and naive reference)."""

import pytest

from repro.cq.evaluation import evaluate, evaluate_naive, synthesize_view_schema
from repro.cq.parser import parse_query
from repro.relational import DatabaseInstance, Value, random_instance, relation, schema


@pytest.fixture
def s():
    return schema(
        relation("R", [("a", "T"), ("b", "U")], key=["a"]),
        relation("S", [("c", "U"), ("d", "T")], key=["c"]),
    )


@pytest.fixture
def inst(s):
    return DatabaseInstance.from_rows(
        s,
        {
            "R": [
                (Value("T", 1), Value("U", 10)),
                (Value("T", 2), Value("U", 20)),
                (Value("T", 3), Value("U", 10)),
            ],
            "S": [
                (Value("U", 10), Value("T", 7)),
                (Value("U", 30), Value("T", 8)),
            ],
        },
    )


def both(q, inst):
    a = evaluate(q, inst)
    b = evaluate_naive(q, inst)
    assert a.rows == b.rows
    return a


def test_projection(inst):
    q = parse_query("Q(X) :- R(X, Y).")
    result = both(q, inst)
    assert result.rows == {
        (Value("T", 1),),
        (Value("T", 2),),
        (Value("T", 3),),
    }


def test_join_via_equality(inst):
    q = parse_query("Q(X, D) :- R(X, Y), S(C, D), Y = C.")
    result = both(q, inst)
    assert result.rows == {
        (Value("T", 1), Value("T", 7)),
        (Value("T", 3), Value("T", 7)),
    }


def test_constant_selection(inst):
    q = parse_query("Q(X) :- R(X, Y), Y = U:10.")
    result = both(q, inst)
    assert result.rows == {(Value("T", 1),), (Value("T", 3),)}


def test_constant_selection_no_match(inst):
    q = parse_query("Q(X) :- R(X, Y), Y = U:99.")
    assert both(q, inst).is_empty()


def test_cross_product(inst):
    q = parse_query("Q(X, C) :- R(X, Y), S(C, D).")
    assert len(both(q, inst)) == 6


def test_head_constant(inst):
    q = parse_query("Q(U:5, X) :- R(X, Y).")
    result = both(q, inst)
    assert all(row[0] == Value("U", 5) for row in result)


def test_duplicate_head_variable(inst):
    q = parse_query("Q(X, X) :- R(X, Y).")
    result = both(q, inst)
    assert all(row[0] == row[1] for row in result)


def test_self_join_identity(inst):
    q = parse_query("Q(X, X2) :- R(X, Y), R(X2, Y2), Y = Y2.")
    result = both(q, inst)
    # b=10 shared between keys 1 and 3.
    keys = {(row[0].token, row[1].token) for row in result}
    assert keys == {(1, 1), (2, 2), (3, 3), (1, 3), (3, 1)}


def test_inconsistent_equalities_yield_empty(inst):
    q = parse_query("Q(X) :- R(X, Y), Y = U:1, Y = U:2.")
    assert both(q, inst).is_empty()


def test_empty_relation_yields_empty(s):
    q = parse_query("Q(X) :- R(X, Y), S(C, D).")
    empty = DatabaseInstance(s)
    assert both(q, empty).is_empty()


def test_result_uses_supplied_view_schema(inst, s):
    view = relation("V", [("t", "T")])
    q = parse_query("V(X) :- R(X, Y).")
    result = evaluate(q, inst, view)
    assert result.schema is view


def test_synthesize_view_schema(s):
    q = parse_query("Q(Y, X) :- R(X, Y).")
    view = synthesize_view_schema(q, s)
    assert view.type_signature == ("U", "T")
    assert view.name == "Q"
    assert view.key is None


def test_agreement_on_random_instances(s):
    queries = [
        "Q(X, Y) :- R(X, Y).",
        "Q(X, D) :- R(X, Y), S(C, D), Y = C.",
        "Q(X, X2) :- R(X, Y), R(X2, Y2), Y = Y2.",
        "Q(D) :- S(C, D), R(X, Y), C = Y, X = D.",
    ]
    for seed in range(4):
        inst = random_instance(s, rows_per_relation=7, seed=seed)
        for text in queries:
            q = parse_query(text)
            assert evaluate(q, inst).rows == evaluate_naive(q, inst).rows


def test_intra_atom_repeat_after_rewrite(s):
    # X = D inside the same atom via equalities forces a repeated variable
    # in the rewritten general form.
    q = parse_query("Q(C) :- S(C, D), S(C2, D2), C = C2, D = D2.")
    for seed in range(3):
        inst = random_instance(s, rows_per_relation=6, seed=seed)
        assert evaluate(q, inst).rows == evaluate_naive(q, inst).rows
