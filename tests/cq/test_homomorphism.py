"""Unit tests for CQ containment and equivalence (Chandra–Merlin)."""

import pytest

from repro.cq.canonical import canonical_database, instantiate_nulls
from repro.cq.evaluation import evaluate
from repro.cq.homomorphism import (
    are_equivalent,
    containment_witness,
    find_homomorphism,
    find_homomorphism_naive,
    is_contained_in,
)
from repro.cq.parser import parse_query
from repro.errors import TypecheckError
from repro.relational import relation, schema
from repro.workloads import chain_query, edge_schema


@pytest.fixture
def s():
    return schema(
        relation("R", [("a", "T"), ("b", "U")], key=["a"]),
        relation("S", [("c", "U"), ("d", "T")], key=["c"]),
    )


def test_query_contained_in_itself(s):
    q = parse_query("Q(X) :- R(X, Y), S(C, D), Y = C.")
    assert is_contained_in(q, q, s)


def test_more_joins_contained_in_fewer(s):
    tight = parse_query("Q(X) :- R(X, Y), S(C, D), Y = C.")
    loose = parse_query("Q(X) :- R(X, Y).")
    assert is_contained_in(tight, loose, s)
    assert not is_contained_in(loose, tight, s)


def test_constant_selection_contained_in_free(s):
    selected = parse_query("Q(X) :- R(X, Y), Y = U:5.")
    free = parse_query("Q(X) :- R(X, Y).")
    assert is_contained_in(selected, free, s)
    assert not is_contained_in(free, selected, s)


def test_different_constants_incomparable(s):
    q1 = parse_query("Q(X) :- R(X, Y), Y = U:1.")
    q2 = parse_query("Q(X) :- R(X, Y), Y = U:2.")
    assert not is_contained_in(q1, q2, s)
    assert not is_contained_in(q2, q1, s)


def test_redundant_atom_equivalence(s):
    q1 = parse_query("Q(X) :- R(X, Y).")
    q2 = parse_query("Q(X) :- R(X, Y), R(A, B).")
    assert are_equivalent(q1, q2, s)


def test_chain_queries_fold():
    """Chain of length 2 with shared head endpoints: classic folding."""
    s = edge_schema()
    short = chain_query(1)
    long = chain_query(2)
    # Every length-2 path's endpoints include... actually chain(2) ⊆ chain(1)
    # is false and chain(1) ⊆ chain(2) is false; but a cycle-shaped query
    # folds onto its core.  Check both directions are cleanly decided.
    assert not is_contained_in(short, long, s)
    assert not is_contained_in(long, short, s)


def test_cycle_folds_onto_self_loop():
    s = edge_schema()
    loop = parse_query("Q(X) :- E(X, Y), X = Y.")
    cycle2 = parse_query("Q(X) :- E(X, Y), E(Y2, X2), Y = Y2, X = X2.")
    # A self-loop satisfies the 2-cycle pattern.
    assert is_contained_in(loop, cycle2, s)
    assert not is_contained_in(cycle2, loop, s)


def test_unsatisfiable_contained_in_everything(s):
    bottom = parse_query("Q(X) :- R(X, Y), Y = U:1, Y = U:2.")
    top = parse_query("Q(X) :- R(X, Y).")
    assert is_contained_in(bottom, top, s)
    assert not is_contained_in(top, bottom, s)
    assert is_contained_in(bottom, bottom, s)


def test_type_mismatch_raises(s):
    q1 = parse_query("Q(X) :- R(X, Y).")
    q2 = parse_query("Q(Y) :- R(X, Y).")
    with pytest.raises(TypecheckError):
        is_contained_in(q1, q2, s)


def test_containment_witness_maps_head(s):
    tight = parse_query("Q(X) :- R(X, Y), S(C, D), Y = C.")
    loose = parse_query("Q(X2) :- R(X2, Y2).")
    witness = containment_witness(tight, loose, s)
    assert witness is not None
    canonical = canonical_database(tight, s)
    from repro.cq.syntax import Variable

    assert witness[Variable("X2")] == canonical.head_row[0]


def test_naive_and_smart_agree(s):
    pairs = [
        ("Q(X) :- R(X, Y), S(C, D), Y = C.", "Q(X) :- R(X, Y)."),
        ("Q(X) :- R(X, Y).", "Q(X) :- R(X, Y), S(C, D), Y = C."),
        ("Q(X) :- R(X, Y), Y = U:5.", "Q(X) :- R(X, Y)."),
    ]
    for t1, t2 in pairs:
        q1, q2 = parse_query(t1), parse_query(t2)
        canonical = canonical_database(q1, s)
        smart = find_homomorphism(q2, canonical)
        naive = find_homomorphism_naive(q2, canonical)
        assert (smart is None) == (naive is None)


def test_containment_validated_by_evaluation(s):
    """Semantic cross-check: q1 ⊆ q2 implies q1(d) ⊆ q2(d) on concrete d."""
    from repro.relational import random_instance

    q1 = parse_query("Q(X) :- R(X, Y), S(C, D), Y = C.")
    q2 = parse_query("Q(X) :- R(X, Y).")
    assert is_contained_in(q1, q2, s)
    for seed in range(5):
        inst = random_instance(s, rows_per_relation=6, seed=seed)
        assert evaluate(q1, inst).rows <= evaluate(q2, inst).rows


def test_duplicated_atom_object_removed_one_occurrence_at_a_time():
    """Regression: ``_search`` once dropped *every* occurrence of the chosen
    atom when the same ``Atom`` object appeared twice in the list (identity
    based removal).  Both occurrences must be matched, one per depth."""
    from repro.cq import indexing
    from repro.cq.homomorphism import _search
    from repro.cq.syntax import Atom, Variable
    from repro.relational import DatabaseInstance, Value, relation, schema

    s2 = schema(relation("E", [("a", "T"), ("b", "T")]))
    instance = DatabaseInstance.from_rows(
        s2, {"E": [(Value("T", 1), Value("T", 2))]}
    )
    shared = Atom("E", (Variable("X"), Variable("Y")))
    atoms = [shared, shared]  # the SAME object twice
    indexing.counters.reset()
    result = _search(
        atoms,
        instance,
        {},
        smart_order=True,
        use_index=True,
        relation_sizes={"E": 1},
    )
    assert result == {Variable("X"): Value("T", 1), Variable("Y"): Value("T", 2)}
    # One index probe per occurrence: the buggy removal did a single probe
    # because the second occurrence vanished along with the first.
    assert indexing.counters.probes == 2


def test_duplicated_atom_object_without_index_or_ordering():
    """Same regression on the naive path (no smart order, full scans)."""
    from repro.cq.homomorphism import _search
    from repro.cq.syntax import Atom, Variable
    from repro.relational import DatabaseInstance, Value, relation, schema

    s2 = schema(relation("E", [("a", "T"), ("b", "T")]))
    instance = DatabaseInstance.from_rows(
        s2,
        {"E": [(Value("T", 1), Value("T", 2)), (Value("T", 2), Value("T", 3))]},
    )
    shared = Atom("E", (Variable("X"), Variable("Y")))
    result = _search(
        [shared, shared],
        instance,
        {Variable("X"): Value("T", 2)},
        smart_order=False,
        use_index=False,
        relation_sizes={"E": 2},
    )
    assert result == {Variable("X"): Value("T", 2), Variable("Y"): Value("T", 3)}


def test_indexed_and_unindexed_matchers_agree(s):
    pairs = [
        ("Q(X) :- R(X, Y), S(C, D), Y = C.", "Q(X) :- R(X, Y)."),
        ("Q(X) :- R(X, Y).", "Q(X) :- R(X, Y), S(C, D), Y = C."),
        ("Q(X) :- R(X, Y), Y = U:5.", "Q(X) :- R(X, Y)."),
        ("Q(X) :- R(X, Y), S(C, D), Y = C.", "Q(X) :- R(X, Y), S(C, D)."),
    ]
    for t1, t2 in pairs:
        q1, q2 = parse_query(t1), parse_query(t2)
        canonical = canonical_database(q1, s)
        indexed = find_homomorphism(q2, canonical, use_index=True)
        scanned = find_homomorphism(q2, canonical, use_index=False)
        assert (indexed is None) == (scanned is None)
        if indexed is not None:
            # Both are genuine homomorphisms: spot-check the indexed one by
            # replaying it over the canonical rows.
            from repro.cq.equality import substitute_representatives
            from repro.cq.syntax import Constant

            rewritten, _ = substitute_representatives(q2)
            for atom in rewritten.body:
                image = tuple(
                    t.value if isinstance(t, Constant) else indexed[t]
                    for t in atom.terms
                )
                assert image in canonical.instance.relation(atom.relation)


def test_non_containment_has_concrete_witness(s):
    """If q1 ⊄ q2 the instantiated canonical database is a witness."""
    q1 = parse_query("Q(X) :- R(X, Y).")
    q2 = parse_query("Q(X) :- R(X, Y), S(C, D), Y = C.")
    assert not is_contained_in(q1, q2, s)
    canonical = canonical_database(q1, s)
    concrete = instantiate_nulls(canonical.instance)
    r1 = evaluate(q1, concrete)
    r2 = evaluate(q2, concrete)
    assert not r1.rows <= r2.rows
