"""Unit tests for query hypergraphs and α-acyclicity (GYO)."""

import pytest

from repro.cq.hypergraph import (
    hyperedges,
    is_alpha_acyclic,
    join_graph,
    query_statistics,
)
from repro.cq.parser import parse_query
from repro.workloads import chain_query, cycle_query, star_query


def test_hyperedges_respect_equality_classes():
    q = parse_query("Q(X) :- R(X, Y), S(Z, W), Y = Z.")
    edges = hyperedges(q)
    assert len(edges) == 2
    # The equated variables resolve to one representative shared by both.
    assert edges[0] & edges[1]


def test_single_atom_acyclic():
    assert is_alpha_acyclic(parse_query("Q(X) :- R(X, Y)."))


def test_chains_and_stars_are_acyclic():
    for n in (1, 2, 5):
        assert is_alpha_acyclic(chain_query(n))
    for rays in (1, 3, 6):
        assert is_alpha_acyclic(star_query(rays))


def test_long_cycles_are_cyclic():
    for n in (3, 4, 6):
        assert not is_alpha_acyclic(cycle_query(n))


def test_two_cycle_is_acyclic():
    """The 2-cycle's edges are {x0,x1} twice — contained, hence acyclic."""
    assert is_alpha_acyclic(cycle_query(2))


def test_triangle_with_covering_edge_is_acyclic():
    """Adding a ternary atom covering the triangle restores acyclicity."""
    q = parse_query(
        "Q(X) :- E(X, Y), E(Y2, Z), E(Z2, X2), T3(X3, Y3, Z3), "
        "Y = Y2, Z = Z2, X = X2, X = X3, Y = Y3, Z = Z3."
    )
    assert is_alpha_acyclic(q)


def test_join_graph_structure():
    q = chain_query(3)
    graph = join_graph(q)
    assert graph.number_of_nodes() == 3
    assert graph.number_of_edges() == 2  # consecutive atoms share a variable


def test_join_graph_disconnected_product():
    q = parse_query("Q(X, Z) :- R(X, Y), S(Z, W).")
    graph = join_graph(q)
    assert graph.number_of_edges() == 0


def test_query_statistics():
    q = parse_query("Q(X) :- R(X, Y), S(Z, W), Y = Z, W = T:5.")
    stats = query_statistics(q)
    assert stats.atoms == 2
    assert stats.distinct_relations == 2
    assert stats.variables == 4
    assert stats.constants == 1
    assert stats.is_connected
    assert stats.is_alpha_acyclic


def test_statistics_of_cycle():
    stats = query_statistics(cycle_query(4))
    assert stats.atoms == 4
    assert not stats.is_alpha_acyclic
    assert stats.is_connected
