"""Unit tests for the per-relation hash indexes (:mod:`repro.cq.indexing`)."""

import pytest

from repro.cq.indexing import candidate_rows, counters, index_on
from repro.relational import DatabaseInstance, Value, relation, schema


@pytest.fixture
def edge_instance():
    s = schema(relation("E", [("a", "T"), ("b", "T")]))
    rows = [
        (Value("T", 1), Value("T", 2)),
        (Value("T", 1), Value("T", 3)),
        (Value("T", 2), Value("T", 3)),
        (Value("T", 3), Value("T", 3)),
    ]
    return DatabaseInstance.from_rows(s, {"E": rows}).relation("E")


def _scan(rel, bound):
    return {row for row in rel.rows if all(row[p] == v for p, v in bound)}


def test_index_groups_rows_by_key(edge_instance):
    index = index_on(edge_instance, (0,))
    assert set(index[(Value("T", 1),)]) == _scan(edge_instance, [(0, Value("T", 1))])
    assert len(index[(Value("T", 1),)]) == 2
    assert len(index[(Value("T", 2),)]) == 1


def test_candidate_rows_match_full_scan(edge_instance):
    bounds = [
        [],
        [(0, Value("T", 1))],
        [(1, Value("T", 3))],
        [(0, Value("T", 3)), (1, Value("T", 3))],
        [(0, Value("T", 9))],  # absent value: no candidates
    ]
    for bound in bounds:
        assert set(candidate_rows(edge_instance, bound)) == _scan(
            edge_instance, bound
        )


def test_index_built_once_per_position_set(edge_instance):
    counters.reset()
    index_on(edge_instance, (0,))
    index_on(edge_instance, (0,))
    assert counters.index_builds == 1
    index_on(edge_instance, (0, 1))
    assert counters.index_builds == 2
    assert index_on(edge_instance, (0,)) is index_on(edge_instance, (0,))


def test_counters_track_probe_effort(edge_instance):
    counters.reset()
    candidate_rows(edge_instance, [])
    assert (counters.probes, counters.rows_probed) == (1, 4)
    candidate_rows(edge_instance, [(0, Value("T", 1))])
    assert (counters.probes, counters.rows_probed) == (2, 6)
    candidate_rows(edge_instance, [(0, Value("T", 9))])
    assert (counters.probes, counters.rows_probed) == (3, 6)
    assert counters.snapshot() == (counters.index_builds, 3, 6)
    counters.reset()
    assert counters.snapshot() == (0, 0, 0)


def test_derived_instances_start_with_fresh_cache(edge_instance):
    """Indexes never leak onto instances derived from this one."""
    index_on(edge_instance, (0,))
    assert edge_instance._index_cache
    schema_obj = edge_instance.schema
    derived = type(edge_instance)(schema_obj, set(edge_instance.rows))
    assert derived._index_cache is None


def test_unpickled_instance_rebuilds_index():
    import pickle

    s = schema(relation("E", [("a", "T"), ("b", "T")]))
    rel = DatabaseInstance.from_rows(
        s, {"E": [(Value("T", 1), Value("T", 2))]}
    ).relation("E")
    index_on(rel, (0,))
    clone = pickle.loads(pickle.dumps(rel))
    assert clone._index_cache is None  # derived data is not shipped
    assert set(candidate_rows(clone, [(0, Value("T", 1))])) == set(rel.rows)
