"""Unit tests for query minimisation (core computation)."""

import pytest

from repro.cq.homomorphism import are_equivalent
from repro.cq.minimize import body_size, is_minimal, minimize
from repro.cq.parser import parse_query
from repro.relational import relation, schema
from repro.workloads import edge_schema


@pytest.fixture
def s():
    return schema(
        relation("R", [("a", "T"), ("b", "U")], key=["a"]),
        relation("S", [("c", "U"), ("d", "T")], key=["c"]),
    )


def test_redundant_atom_removed(s):
    q = parse_query("Q(X) :- R(X, Y), R(A, B).")
    minimized = minimize(q, s)
    assert body_size(minimized) == 1
    assert are_equivalent(q, minimized, s)


def test_minimal_query_unchanged_in_size(s):
    q = parse_query("Q(X, C) :- R(X, Y), S(C, D).")
    assert body_size(minimize(q, s)) == 2
    assert is_minimal(q, s)


def test_join_atom_not_removed(s):
    q = parse_query("Q(X) :- R(X, Y), S(C, D), Y = C.")
    minimized = minimize(q, s)
    assert body_size(minimized) == 2


def test_folding_chain():
    """E(x,y),E(y2,y3) with head x: second atom folds onto the first."""
    s = edge_schema()
    q = parse_query("Q(X) :- E(X, Y), E(A, B).")
    minimized = minimize(q, s)
    assert body_size(minimized) == 1


def test_cycle_with_self_loop_folds():
    s = edge_schema()
    # 2-cycle plus a self-loop on the exported node folds to the loop.
    q = parse_query(
        "Q(X) :- E(X, X2), E(Y, Z), E(Z2, Y2), X = X2, Y = Y2, Z = Z2, X = Y."
    )
    minimized = minimize(q, s)
    assert body_size(minimized) == 1
    assert are_equivalent(q, minimized, s)


def test_unsatisfiable_returned_unchanged(s):
    q = parse_query("Q(X) :- R(X, Y), Y = U:1, Y = U:2.")
    assert minimize(q, s) == q
    assert not is_minimal(q, s)


def test_head_variables_protected(s):
    """An atom supplying a head variable can never be dropped."""
    q = parse_query("Q(X, C) :- R(X, Y), S(C, D).")
    minimized = minimize(q, s)
    relations = set(minimized.body_relations())
    assert relations == {"R", "S"}


def test_minimize_is_idempotent(s):
    q = parse_query("Q(X) :- R(X, Y), R(A, B), S(C, D).")
    once = minimize(q, s)
    assert minimize(once, s) == once


def test_equalities_folded_before_minimisation(s):
    q = parse_query("Q(X) :- R(X, Y), R(A, B), X = A, Y = B.")
    minimized = minimize(q, s)
    assert body_size(minimized) == 1
