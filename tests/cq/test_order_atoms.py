"""Unit tests for the greedy join-order heuristic."""

from repro.cq.evaluation import _order_atoms
from repro.cq.parser import parse_query


def atoms_of(text):
    return parse_query(text).body


def test_order_preserves_atom_multiset():
    body = atoms_of("Q(X) :- R(X, Y), S(Y2, Z), T0(Z2, W).")
    ordered = _order_atoms(body)
    assert sorted(a.relation for a in ordered) == sorted(
        a.relation for a in body
    )


def test_connected_atoms_follow_their_binders():
    """After the first atom, atoms sharing variables are preferred over
    disconnected ones (avoiding cross products when possible)."""
    body = atoms_of("Q(X) :- R(X, Y), Disconnected(U, V), S(Y, Z).")
    ordered = _order_atoms(body)
    positions = {a.relation: i for i, a in enumerate(ordered)}
    # S shares Y with R; Disconnected shares nothing — S must not be last.
    assert positions["S"] < positions["Disconnected"] or positions["R"] > positions["S"]


def test_single_atom_unchanged():
    body = atoms_of("Q(X) :- R(X, Y).")
    assert _order_atoms(body) == list(body)


def test_order_is_deterministic():
    body = atoms_of("Q(X) :- R(X, Y), S(Y2, Z), T0(Z2, W), R(A, B).")
    assert _order_atoms(body) == _order_atoms(body)
