"""Unit tests for the conjunctive query text parser."""

import pytest

from repro.cq.parser import format_query, parse_queries, parse_query
from repro.cq.syntax import Constant, Variable
from repro.errors import QuerySyntaxError
from repro.relational.domain import Value


def test_parse_simple_query():
    q = parse_query("Q(X, Y) :- R(X, Z), S(Z, Y).")
    assert q.view_name == "Q"
    assert q.arity == 2
    assert q.body_relations() == ("R", "S")
    assert q.equalities == ()


def test_parse_equalities():
    q = parse_query("Q(X) :- R(X, Y), P(A, B), Y = A, B = X.")
    assert len(q.equalities) == 2


def test_parse_integer_constant():
    q = parse_query("Q(X) :- R(X, Y), Y = Num:42.")
    left, right = q.equalities[0]
    assert right == Constant(Value("Num", 42))


def test_parse_negative_integer_constant():
    q = parse_query("Q(X) :- R(X, Y), Y = Num:-3.")
    assert q.equalities[0][1] == Constant(Value("Num", -3))


def test_parse_string_constant():
    q = parse_query("Q(X) :- R(X, Y), Y = Str:'hello world'.")
    assert q.equalities[0][1] == Constant(Value("Str", "hello world"))


def test_parse_constant_in_head():
    q = parse_query("Q(Str:'a', X) :- P(X, Y).")
    assert q.head.terms[0] == Constant(Value("Str", "a"))


def test_parse_constant_in_body_position():
    q = parse_query("Q(X) :- R(X, Num:5).")
    assert q.body[0].terms[1] == Constant(Value("Num", 5))


def test_trailing_period_optional():
    assert parse_query("Q(X) :- R(X, Y)") == parse_query("Q(X) :- R(X, Y).")


def test_paper_example_identity_join():
    # The paper's §2 example of an identity join.
    q = parse_query("Q(X, Y, Z) :- R(X, Z), R(Y, T), Z = T.")
    assert q.body_relations() == ("R", "R")
    assert q.equalities == ((Variable("Z"), Variable("T")),)


def test_parse_rejects_garbage():
    with pytest.raises(QuerySyntaxError):
        parse_query("Q(X) <- R(X)")
    with pytest.raises(QuerySyntaxError):
        parse_query("Q(X) :- R(X,)")
    with pytest.raises(QuerySyntaxError):
        parse_query("Q(X) :- R(X) extra")
    with pytest.raises(QuerySyntaxError):
        parse_query("Q(X) :-")


def test_parse_rejects_unknown_character():
    with pytest.raises(QuerySyntaxError):
        parse_query("Q(X) :- R(X & Y)")


def test_parse_rejects_head_only_variable():
    with pytest.raises(QuerySyntaxError):
        parse_query("Q(W) :- R(X, Y).")


def test_parse_queries_multiline_with_comments():
    queries = parse_queries(
        """
        # first
        Q(X) :- R(X, Y).
        P(Y) :- R(X, Y).
        """
    )
    assert [q.view_name for q in queries] == ["Q", "P"]


def test_format_round_trips():
    texts = [
        "Q(X, Y) :- R(X, Z), S(Z, Y), X = Y.",
        "Q(X) :- R(X, Y), Y = Num:7.",
        "Q(Str:'a', X) :- P(X, Y).",
    ]
    for text in texts:
        q = parse_query(text)
        assert parse_query(format_query(q)) == q
