"""Unit tests for the receives relation (paper §2 attribute flow)."""

import pytest

from repro.cq.parser import parse_query
from repro.cq.receives import analyze_view, analyze_views
from repro.errors import TypecheckError
from repro.relational import QualifiedAttribute, Value, relation, schema


@pytest.fixture
def s():
    return schema(
        relation("P", [("p1", "T"), ("p2", "T")], key=["p1"]),
        relation("Q0", [("q1", "T"), ("q2", "T")], key=["q1"]),
    )


def test_paper_receives_example(s):
    """R(X,Y,Z) :- P(X,Y), Q(T,Z), Y = T: the second head attribute receives
    P.p2 and Q.q1 (paper §2)."""
    q = parse_query("R(X, Y, Z) :- P(X, Y), Q0(T, Z), Y = T.")
    analysis = analyze_view(q, s)
    assert analysis.attributes[1] == frozenset(
        {
            QualifiedAttribute("P", "p2", "T"),
            QualifiedAttribute("Q0", "q1", "T"),
        }
    )
    assert analysis.attributes[0] == frozenset({QualifiedAttribute("P", "p1", "T")})
    assert analysis.attributes[2] == frozenset({QualifiedAttribute("Q0", "q2", "T")})


def test_paper_constant_example(s):
    """R(a,Y,X) :- P(X,Y): the first attribute receives the constant."""
    q = parse_query("R(T:'a', Y, X) :- P(X, Y).")
    analysis = analyze_view(q, s)
    assert analysis.constants[0] == Value("T", "a")
    assert analysis.attributes[0] == frozenset()


def test_constant_via_equality_class(s):
    q = parse_query("R(X) :- P(X, Y), X = T:7.")
    analysis = analyze_view(q, s)
    assert analysis.constants[0] == Value("T", 7)
    # It still receives the attribute too.
    assert QualifiedAttribute("P", "p1", "T") in analysis.attributes[0]


def test_multiple_occurrences_of_same_relation(s):
    q = parse_query("R(X) :- P(X, Y), P(A, B), X = A.")
    analysis = analyze_view(q, s)
    assert analysis.attributes[0] == frozenset({QualifiedAttribute("P", "p1", "T")})


def test_receive_through_join_both_attributes(s):
    q = parse_query("R(Y) :- P(X, Y), Q0(A, B), Y = B.")
    analysis = analyze_view(q, s)
    assert analysis.attributes[0] == frozenset(
        {QualifiedAttribute("P", "p2", "T"), QualifiedAttribute("Q0", "q2", "T")}
    )


def test_unknown_relation_raises(s):
    q = parse_query("R(X) :- Z(X).")
    with pytest.raises(TypecheckError):
        analyze_view(q, s)


def test_mapping_receives(s):
    target = schema(relation("V", [("v1", "T"), ("v2", "T")], key=["v1"]))
    views = {"V": parse_query("V(X, Y) :- P(X, Y).")}
    receives = analyze_views(views, s, target)
    v1 = QualifiedAttribute("V", "v1", "T")
    v2 = QualifiedAttribute("V", "v2", "T")
    p1 = QualifiedAttribute("P", "p1", "T")
    p2 = QualifiedAttribute("P", "p2", "T")
    assert receives.receives(v1, p1)
    assert receives.receives(v2, p2)
    assert not receives.receives(v1, p2)
    assert receives.receivers_of(p1) == frozenset({v1})
    assert receives.sources_received() == frozenset({p1, p2})
    assert receives.constant_received(v1) is None


def test_mapping_receives_missing_view(s):
    target = schema(relation("V", [("v1", "T")], key=["v1"]))
    with pytest.raises(TypecheckError):
        analyze_views({}, s, target)


def test_targets_listing(s):
    target = schema(relation("V", [("v1", "T")], key=["v1"]))
    views = {"V": parse_query("V(X) :- P(X, Y).")}
    receives = analyze_views(views, s, target)
    assert receives.targets() == (QualifiedAttribute("V", "v1", "T"),)
