"""Unit tests for identity joins, ij-saturation, and product queries.

The examples are lifted directly from the paper's §2.
"""

import pytest

from repro.cq.homomorphism import are_equivalent, is_contained_in
from repro.cq.parser import parse_query
from repro.cq.saturation import (
    ConditionKind,
    classify_conditions,
    has_only_identity_joins,
    is_ij_saturated,
    is_product_query,
    lemma2_hat,
    saturate,
    to_product_query,
)
from repro.errors import QuerySyntaxError
from repro.relational import relation, schema


@pytest.fixture
def s():
    return schema(
        relation("R", [("a", "T"), ("b", "T")], key=["a"]),
        relation("P", [("x", "T"), ("y", "T")], key=["x"]),
        relation("Q3", [("u", "T"), ("v", "T"), ("w", "T")], key=["u"]),
    )


def kinds(q):
    return {c.kind for c in classify_conditions(q)}


def test_paper_identity_join_example():
    """Q(X,Y,Z) :- R(X,Z), R(Y,T), Z = T — an identity join (paper §2)."""
    q = parse_query("Q(X, Y, Z) :- R(X, Z), R(Y, T), Z = T.")
    assert kinds(q) == {ConditionKind.IDENTITY_JOIN}
    assert has_only_identity_joins(q)


def test_paper_non_identity_self_join_example():
    """Q(X,Y,Z) :- R(X,Y,Z), R(T,U,V), Y=T, Z=V — not an identity join."""
    q = parse_query("Q(X, Y, Z) :- Q3(X, Y, Z), Q3(T, U, V), Y = T, Z = V.")
    assert ConditionKind.NON_IDENTITY_JOIN in kinds(q)
    assert not has_only_identity_joins(q)


def test_column_selection_detected():
    q = parse_query("Q(X) :- R(X, Y), X = Y.")
    assert kinds(q) == {ConditionKind.COLUMN_SELECTION}


def test_constant_selection_detected():
    q = parse_query("Q(X) :- R(X, Y), Y = T:5.")
    assert ConditionKind.CONSTANT_SELECTION in kinds(q)


def test_join_between_different_relations_is_non_identity():
    q = parse_query("Q(X) :- R(X, Y), P(A, B), Y = A.")
    assert ConditionKind.NON_IDENTITY_JOIN in kinds(q)


def test_paper_saturated_example():
    """The paper's ij-saturated query with three occurrences of R."""
    q = parse_query(
        "Q(X, Y) :- R(X, Y), R(A, B), R(C, D), X = A, X = C, Y = B, Y = D."
    )
    assert is_ij_saturated(q)


def test_paper_unsaturated_example():
    """The paper's non-saturated variant: Y = D and B = D not inferable."""
    q = parse_query(
        "Q(X, Y) :- R(X, Y), R(A, B), R(C, D), X = A, X = C, A = C, Y = B."
    )
    assert not is_ij_saturated(q)


def test_pure_cross_product_of_self_is_not_saturated():
    """A cross product R × R is a degenerate identity join but not saturated."""
    q = parse_query("Q(X, Y) :- R(X, Y), R(A, B).")
    assert has_only_identity_joins(q)
    assert not is_ij_saturated(q)


def test_single_occurrence_is_saturated():
    q = parse_query("Q(X, Y) :- R(X, Y).")
    assert is_ij_saturated(q)


def test_saturate_adds_missing_conditions():
    """The paper's example: saturating adds Y=D inferred conditions."""
    q = parse_query(
        "Q(X, Y) :- R(X, Y), R(A, B), R(C, D), X = A, X = C, A = C, Y = B."
    )
    saturated = saturate(q)
    assert is_ij_saturated(saturated)
    assert len(saturated.body) == len(q.body)


def test_saturate_is_contained_in_original(s):
    q = parse_query("Q(X, Y) :- R(X, Y), R(A, B), X = A.")
    saturated = saturate(q)
    assert is_contained_in(saturated, q, s)


def test_saturate_idempotent_on_saturated():
    q = parse_query("Q(X, Y) :- R(X, Y).")
    assert saturate(q) == q.paper_form()


def test_product_query_detection():
    assert is_product_query(parse_query("Q(X, Y) :- R(X, Y)."))
    assert is_product_query(parse_query("Q(X, A) :- R(X, Y), P(A, B)."))
    assert not is_product_query(parse_query("Q(X, Y) :- R(X, Y), R(A, B)."))
    assert not is_product_query(parse_query("Q(X) :- R(X, Y), X = Y."))


def test_to_product_query_requires_saturation():
    q = parse_query("Q(X, Y) :- R(X, Y), R(A, B).")
    with pytest.raises(QuerySyntaxError):
        to_product_query(q)


def test_to_product_query_lemma1(s):
    """Lemma 1: the product query is equivalent and keeps the relations."""
    q = parse_query(
        "Q(X, Y) :- R(X, Y), R(A, B), R(C, D), X = A, X = C, Y = B, Y = D."
    )
    product = to_product_query(q)
    assert is_product_query(product)
    assert set(product.body_relations()) == {"R"}
    assert are_equivalent(q, product, s)


def test_to_product_query_rewires_head(s):
    """Head variables from dropped occurrences are rewired to survivors."""
    q = parse_query("Q(A, B) :- R(X, Y), R(A, B), X = A, Y = B.")
    product = to_product_query(q)
    body_vars = {t for a in product.body for t in a.terms}
    assert all(t in body_vars for t in product.head.terms)
    assert are_equivalent(q, product, s)


def test_lemma2_hat_requires_premise():
    q = parse_query("Q(X) :- R(X, Y), X = Y.")
    with pytest.raises(QuerySyntaxError):
        lemma2_hat(q)


def test_lemma2_hat_contained_and_same_relations(s):
    q = parse_query("Q(X, A) :- R(X, Y), R(A, B), P(C, D).")
    hat = lemma2_hat(q)
    assert is_product_query(hat)
    assert set(hat.body_relations()) == {"R", "P"}
    assert is_contained_in(hat, q, s)


def test_mixed_relations_saturation(s):
    q = parse_query("Q(X, C) :- R(X, Y), P(C, D), P(E, F), C = E, D = F.")
    assert is_ij_saturated(q)
    product = to_product_query(q)
    assert sorted(product.body_relations()) == ["P", "R"]
    assert are_equivalent(q, product, s)
