"""Unit tests for conjunctive query syntax and paper-form normalisation."""

import pytest

from repro.cq.syntax import (
    Atom,
    ConjunctiveQuery,
    Constant,
    Variable,
    atom,
    is_constant,
    is_variable,
    query,
)
from repro.errors import QuerySyntaxError
from repro.relational.domain import Value
from repro.utils.fresh import FreshNames


def test_atom_builder_coercions():
    a = atom("R", "X", Value("T", 1), Variable("Y"))
    assert a.relation == "R"
    assert a.terms[0] == Variable("X")
    assert a.terms[1] == Constant(Value("T", 1))
    assert a.terms[2] == Variable("Y")


def test_atom_builder_rejects_garbage():
    with pytest.raises(QuerySyntaxError):
        atom("R", 3.14)  # type: ignore[arg-type]


def test_is_variable_is_constant():
    assert is_variable(Variable("X")) and not is_variable(Constant(Value("T", 1)))
    assert is_constant(Constant(Value("T", 1))) and not is_constant(Variable("X"))


def test_query_requires_nonempty_body():
    with pytest.raises(QuerySyntaxError):
        ConjunctiveQuery(atom("V", "X"), [])


def test_head_variables_must_occur_in_body():
    with pytest.raises(QuerySyntaxError):
        ConjunctiveQuery(atom("V", "Z"), [atom("R", "X", "Y")])


def test_equality_variables_must_occur_in_body():
    with pytest.raises(QuerySyntaxError):
        ConjunctiveQuery(
            atom("V", "X"), [atom("R", "X", "Y")], [("X", "Z")]
        )


def test_equality_coercion_variable_first():
    q = ConjunctiveQuery(
        atom("V", "X"), [atom("R", "X", "Y")], [(Value("T", 1), "Y")]
    )
    left, right = q.equalities[0]
    assert left == Variable("Y") and right == Constant(Value("T", 1))


def test_constant_constant_equality_allowed():
    q = ConjunctiveQuery(
        atom("V", "X"),
        [atom("R", "X", "Y")],
        [(Value("T", 1), Value("T", 2))],
    )
    assert len(q.equalities) == 1


def test_variables_and_constants_collection():
    q = ConjunctiveQuery(
        atom("V", "X", Value("T", 5)),
        [atom("R", "X", "Y")],
        [("Y", Value("U", 7))],
    )
    assert q.variables() == frozenset({Variable("X"), Variable("Y")})
    assert q.constants() == frozenset({Value("T", 5), Value("U", 7)})


def test_body_relations_with_repetition():
    q = query(atom("V", "X"), [atom("R", "X", "Y"), atom("R", "A", "B")])
    assert q.body_relations() == ("R", "R")


def test_paper_form_detection():
    good = query(atom("V", "X"), [atom("R", "X", "Y")])
    assert good.is_paper_form
    repeated = query(atom("V", "X"), [atom("R", "X", "X")])
    assert not repeated.is_paper_form
    with_const = query(atom("V", "X"), [atom("R", "X", Value("U", 1))])
    assert not with_const.is_paper_form


def test_paper_form_normalisation_repeated_variable():
    q = query(atom("V", "X"), [atom("R", "X", "X")])
    paper = q.paper_form()
    assert paper.is_paper_form
    # The repeat became a fresh variable plus an equality.
    assert len(paper.equalities) == 1
    terms = paper.body[0].terms
    assert terms[0] != terms[1]


def test_paper_form_normalisation_constant():
    q = query(atom("V", "X"), [atom("R", "X", Value("U", 9))])
    paper = q.paper_form()
    assert paper.is_paper_form
    left, right = paper.equalities[0]
    assert isinstance(right, Constant) and right.value == Value("U", 9)


def test_paper_form_idempotent():
    q = query(atom("V", "X"), [atom("R", "X", "X")])
    paper = q.paper_form()
    assert paper.paper_form() is paper


def test_rename_variables():
    q = query(atom("V", "X"), [atom("R", "X", "Y")], [("X", "Y")])
    renamed = q.rename_variables({Variable("X"): Variable("Z")})
    assert renamed.head.terms == (Variable("Z"),)
    assert renamed.equalities[0][0] == Variable("Z")


def test_freshened_disjoint_variables():
    q = query(atom("V", "X"), [atom("R", "X", "Y")])
    fresh = FreshNames(prefix="f")
    renamed = q.freshened(fresh)
    assert renamed.variables().isdisjoint(q.variables())


def test_with_extra_equalities():
    q = query(atom("V", "X"), [atom("R", "X", "Y")])
    extended = q.with_extra_equalities([("X", "Y")])
    assert len(extended.equalities) == 1


def test_query_hash_and_equality():
    q1 = query(atom("V", "X"), [atom("R", "X", "Y")])
    q2 = query(atom("V", "X"), [atom("R", "X", "Y")])
    assert q1 == q2 and hash(q1) == hash(q2)
