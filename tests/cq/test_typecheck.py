"""Unit tests for query typing against a schema."""

import pytest

from repro.cq.parser import parse_query
from repro.cq.syntax import Variable
from repro.cq.typecheck import (
    class_types_consistent,
    head_type,
    infer_types,
    is_well_typed,
    typecheck_view,
)
from repro.errors import TypecheckError
from repro.relational import relation, schema


@pytest.fixture
def s():
    return schema(
        relation("R", [("a", "T"), ("b", "U")], key=["a"]),
        relation("S", [("c", "U"), ("d", "T")], key=["c"]),
    )


def test_infer_types_basic(s):
    q = parse_query("Q(X, Y) :- R(X, Y).")
    types = infer_types(q, s)
    assert types == {Variable("X"): "T", Variable("Y"): "U"}


def test_infer_types_through_join(s):
    q = parse_query("Q(X) :- R(X, Y), S(C, D), Y = C.")
    types = infer_types(q, s)
    assert types[Variable("Y")] == "U" and types[Variable("C")] == "U"


def test_unknown_relation_rejected(s):
    with pytest.raises(TypecheckError):
        infer_types(parse_query("Q(X) :- Z(X)."), s)


def test_arity_mismatch_rejected(s):
    with pytest.raises(TypecheckError):
        infer_types(parse_query("Q(X) :- R(X)."), s)


def test_variable_at_two_types_rejected(s):
    with pytest.raises(TypecheckError):
        infer_types(parse_query("Q(X) :- R(X, Y), S(X, D)."), s)


def test_ill_typed_equality_rejected(s):
    with pytest.raises(TypecheckError):
        infer_types(parse_query("Q(X) :- R(X, Y), X = Y."), s)


def test_ill_typed_constant_in_body_rejected(s):
    with pytest.raises(TypecheckError):
        infer_types(parse_query("Q(X) :- R(X, U:1), R(X2, T:1)."), s)


def test_ill_typed_constant_equality_rejected(s):
    with pytest.raises(TypecheckError):
        infer_types(parse_query("Q(X) :- R(X, Y), Y = T:1."), s)


def test_well_typed_constant_ok(s):
    q = parse_query("Q(X) :- R(X, Y), Y = U:1.")
    assert is_well_typed(q, s)


def test_head_type(s):
    q = parse_query("Q(Y, X) :- R(X, Y).")
    assert head_type(q, s) == ("U", "T")


def test_head_type_with_constant(s):
    q = parse_query("Q(U:5, X) :- R(X, Y).")
    assert head_type(q, s) == ("U", "T")


def test_typecheck_view_accepts_matching(s):
    view = relation("V", [("u", "U"), ("t", "T")])
    q = parse_query("V(Y, X) :- R(X, Y).")
    typecheck_view(q, s, view)


def test_typecheck_view_rejects_wrong_signature(s):
    view = relation("V", [("t", "T"), ("u", "U")])
    q = parse_query("V(Y, X) :- R(X, Y).")
    with pytest.raises(TypecheckError):
        typecheck_view(q, s, view)


def test_typecheck_view_rejects_wrong_arity(s):
    view = relation("V", [("t", "T")])
    q = parse_query("V(Y, X) :- R(X, Y).")
    with pytest.raises(TypecheckError):
        typecheck_view(q, s, view)


def test_class_types_consistent(s):
    ok = parse_query("Q(X) :- R(X, Y), S(C, D), Y = C.")
    assert class_types_consistent(ok, s)
    bad = parse_query("Q(X) :- R(X, Y), S(C, D), X = C.")
    assert not class_types_consistent(bad, s)
