"""Unit tests for unions of conjunctive queries."""

import pytest

from repro.cq.chase import egds_of_schema
from repro.cq.parser import parse_query
from repro.cq.ucq import (
    UnionQuery,
    cq_contained_in_union,
    evaluate_union,
    minimize_union,
    union_contained_in,
    unions_equivalent,
)
from repro.errors import QuerySyntaxError, TypecheckError
from repro.relational import random_instance, relation, schema


@pytest.fixture
def s():
    return schema(
        relation("R", [("a", "T"), ("b", "U")], key=["a"]),
        relation("S", [("c", "T"), ("d", "U")], key=["c"]),
    )


def u(*texts):
    return UnionQuery([parse_query(t) for t in texts])


def test_union_requires_disjuncts():
    with pytest.raises(QuerySyntaxError):
        UnionQuery([])


def test_union_requires_matching_arity():
    with pytest.raises(QuerySyntaxError):
        u("Q(X) :- R(X, Y).", "Q(X, Y) :- R(X, Y).")


def test_union_requires_matching_view_name():
    with pytest.raises(QuerySyntaxError):
        u("Q(X) :- R(X, Y).", "P(X) :- R(X, Y).")


def test_check_types_rejects_mixed(s):
    union = u("Q(X) :- R(X, Y).", "Q(Y) :- R(X, Y).")
    with pytest.raises(TypecheckError):
        union.check_types(s)


def test_evaluation_is_union_of_answers(s):
    union = u("Q(X) :- R(X, Y).", "Q(C) :- S(C, D).")
    for seed in range(3):
        d = random_instance(s, rows_per_relation=5, seed=seed)
        answer = evaluate_union(union, d)
        expected = d.relation("R").project(["a"]) | d.relation("S").project(["c"])
        assert answer.rows == expected


def test_cq_contained_in_union_needs_single_disjunct_hom(s):
    """q ⊆ p1 ∪ p2 via p1 alone."""
    q = parse_query("Q(X) :- R(X, Y), S(C, D), X = C.")
    union = u("Q(X) :- R(X, Y).", "Q(C) :- S(C, D), R(X2, Y2), Y2 = D.")
    assert cq_contained_in_union(q, union, s)


def test_cq_not_contained_when_no_disjunct_matches(s):
    q = parse_query("Q(X) :- R(X, Y).")
    union = u(
        "Q(X) :- R(X, Y), S(C, D), X = C.",
        "Q(X2) :- R(X2, Y2), S(C2, D2), Y2 = D2.",
    )
    assert not cq_contained_in_union(q, union, s)


def test_union_containment_per_disjunct(s):
    small = u("Q(X) :- R(X, Y), S(C, D), X = C.")
    big = u("Q(X) :- R(X, Y).", "Q(C) :- S(C, D).")
    assert union_contained_in(small, big, s)
    assert not union_contained_in(big, small, s)


def test_union_equivalence_reordering(s):
    left = u("Q(X) :- R(X, Y).", "Q(C) :- S(C, D).")
    right = u("Q(C) :- S(C, D).", "Q(X) :- R(X, Y).")
    assert unions_equivalent(left, right, s)


def test_unsatisfiable_disjunct_ignored(s):
    bottom = "Q(X) :- R(X, Y), Y = U:1, Y = U:2."
    left = u("Q(X) :- R(X, Y).", bottom)
    right = u("Q(X) :- R(X, Y).")
    assert unions_equivalent(left, right, s)


def test_containment_under_keys_through_union(s):
    """The key of R collapses the pair query into the diagonal disjunct."""
    pairs = parse_query("Q(Y, Y2) :- R(X, Y), R(X2, Y2), X = X2.")
    union = u("Q(Y, Y) :- R(X, Y).", "Q(D, D2) :- S(C, D), S(C2, D2).")
    assert not cq_contained_in_union(pairs, union, s)
    assert cq_contained_in_union(pairs, union, s, egds=egds_of_schema(s))


def test_minimize_union_drops_contained_disjunct(s):
    union = u(
        "Q(X) :- R(X, Y).",
        "Q(X) :- R(X, Y), S(C, D), X = C.",  # contained in the first
    )
    minimized = minimize_union(union, s)
    assert len(minimized) == 1
    assert unions_equivalent(union, minimized, s)


def test_minimize_union_minimises_survivors(s):
    union = u("Q(X) :- R(X, Y), R(A, B).")
    minimized = minimize_union(union, s)
    assert len(minimized.disjuncts[0].body) == 1


def test_minimize_union_keeps_incomparable_disjuncts(s):
    union = u("Q(X) :- R(X, Y).", "Q(C) :- S(C, D).")
    minimized = minimize_union(union, s)
    assert len(minimized) == 2
