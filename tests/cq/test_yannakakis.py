"""Unit tests for Yannakakis-style acyclic evaluation."""

import pytest

from repro.cq.evaluation import evaluate
from repro.cq.hypergraph import hyperedges, is_alpha_acyclic
from repro.cq.parser import parse_query
from repro.cq.yannakakis import evaluate_acyclic, join_tree
from repro.relational import DatabaseInstance, Value, random_instance, relation, schema
from repro.workloads import (
    chain_query,
    cycle_query,
    edge_schema,
    path_instance,
    random_graph_instance,
    random_identity_join_query,
    random_query,
    star_query,
)
from repro.workloads.schema_gen import random_keyed_schema


def both(q, inst):
    a = evaluate_acyclic(q, inst)
    b = evaluate(q, inst)
    assert a.rows == b.rows
    return a


def test_join_tree_of_chain():
    q = chain_query(4)
    from repro.cq.equality import substitute_representatives

    rewritten, _ = substitute_representatives(q)
    edges = [frozenset(a.variables()) for a in rewritten.body]
    links = join_tree(edges)
    assert links is not None
    assert len(links) == 3  # n atoms → n-1 parent links


def test_join_tree_rejects_cycle():
    q = cycle_query(4)
    from repro.cq.equality import substitute_representatives

    rewritten, _ = substitute_representatives(q)
    edges = [frozenset(a.variables()) for a in rewritten.body]
    assert join_tree(edges) is None


def test_chain_query_agreement():
    inst = random_graph_instance(nodes=20, edges=60, seed=3)
    for n in (1, 2, 4):
        both(chain_query(n), inst)


def test_star_query_agreement():
    inst = random_graph_instance(nodes=15, edges=50, seed=4)
    for rays in (1, 3, 5):
        both(star_query(rays), inst)


def test_cyclic_query_falls_back():
    inst = random_graph_instance(nodes=10, edges=30, seed=5)
    q = cycle_query(3)
    assert not is_alpha_acyclic(q)
    both(q, inst)  # falls back to the standard pipeline, same answers


def test_path_instance_exact_counts():
    inst = path_instance(6)
    result = both(chain_query(3), inst)
    # A simple path has exactly len-3 chains of length 3... endpoints export
    # (x0, x3): 4 of them on a 6-edge path.
    assert len(result) == 4


def test_dangling_tuples_removed():
    """A chain over a graph where most edges dangle: answers still exact."""
    s = edge_schema()
    rows = [(Value("Node", i), Value("Node", i + 1)) for i in range(3)]
    # Add dangling edges that cannot extend to a full 3-chain.
    rows += [(Value("Node", 100 + i), Value("Node", 200 + i)) for i in range(50)]
    inst = DatabaseInstance.from_rows(s, {"E": rows})
    result = both(chain_query(3), inst)
    assert len(result) == 1


def test_constants_and_repeats():
    s = edge_schema()
    inst = random_graph_instance(nodes=8, edges=40, seed=6)
    loops = parse_query("Q(X) :- E(X, Y), X = Y.")
    both(loops, inst)
    pinned = parse_query("Q(Y) :- E(X, Y), X = Node:1.")
    both(pinned, inst)


def test_disconnected_product_query():
    s = schema(
        relation("R", [("a", "T"), ("b", "T")], key=["a"]),
        relation("S", [("c", "U")], key=["c"]),
    )
    inst = random_instance(s, rows_per_relation=4, seed=7)
    q = parse_query("Q(X, C) :- R(X, Y), S(C).")
    both(q, inst)


def test_empty_component_zeroes_product():
    s = schema(
        relation("R", [("a", "T")], key=["a"]),
        relation("S", [("c", "U")], key=["c"]),
    )
    inst = DatabaseInstance.from_rows(
        s, {"R": [(Value("T", 1),)], "S": []}
    )
    q = parse_query("Q(X, C) :- R(X), S(C).")
    assert both(q, inst).is_empty()


def test_random_acyclic_queries_differential():
    for schema_seed in range(4):
        s = random_keyed_schema(schema_seed, ["A", "B"], n_relations=2, max_arity=3)
        inst = random_instance(s, rows_per_relation=5, seed=schema_seed)
        for query_seed in range(12):
            q = random_query(s, seed=query_seed, max_atoms=3)
            both(q, inst)
        for query_seed in range(8):
            q = random_identity_join_query(s, seed=query_seed, max_atoms=3)
            both(q, inst)


def test_inconsistent_query_empty():
    s = edge_schema()
    inst = path_instance(3)
    q = parse_query("Q(X) :- E(X, Y), Y = Node:1, Y = Node:2.")
    assert evaluate_acyclic(q, inst).is_empty()
