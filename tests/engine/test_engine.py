"""Unit tests for the reusable engine (:mod:`repro.engine`)."""

import json

import pytest

from repro.core.search import scan_fingerprint
from repro.engine import Engine, EngineConfig, ResultCache, fingerprint_key
from repro.errors import MappingError
from repro.relational import parse_schema

SCHEMA_A = "emp(ss*: SSN, name: Name)"
SCHEMA_B = "person(id*: SSN, nm: Name)"
SCHEMA_C = "person(id*: SSN, nm: Name, extra: Name)"


def _schema(text):
    schema, _ = parse_schema(text)
    return schema


@pytest.fixture
def engine():
    eng = Engine(EngineConfig())
    with eng:
        yield eng


def test_lifecycle_restores_toggles():
    from repro.cq import backends
    from repro.utils import memo

    assert memo.caches_enabled()
    before_backend = backends.default_backend_name()
    eng = Engine(EngineConfig(use_cache=False, backend="naive"))
    with eng:
        assert not memo.caches_enabled()
        assert backends.default_backend_name() == "naive"
    assert memo.caches_enabled()
    assert backends.default_backend_name() == before_backend


def test_activate_is_idempotent():
    eng = Engine(EngineConfig())
    assert eng.activate() is eng.activate()
    eng.close()


def test_equivalence_request_payload(engine):
    payload = engine.equivalence_request(_schema(SCHEMA_A), _schema(SCHEMA_B))
    assert payload["kind"] == "equivalence"
    assert payload["verdict"] == "ok"
    assert payload["equivalent"] is True
    assert payload["lines"]
    # Deterministic and JSON-serializable.
    json.dumps(payload)


def test_equivalence_request_negative(engine):
    payload = engine.equivalence_request(_schema(SCHEMA_A), _schema(SCHEMA_C))
    assert payload["equivalent"] is False


def test_second_identical_request_is_served_from_cache(engine):
    s1, s2 = _schema(SCHEMA_A), _schema(SCHEMA_B)
    hits_before = engine.result_cache.hits
    first = engine.dominance_request(s1, s2, max_atoms=1)
    second = engine.dominance_request(_schema(SCHEMA_A), _schema(SCHEMA_B), max_atoms=1)
    assert second is first  # the stored payload object, no recomputation
    assert engine.result_cache.hits == hits_before + 1
    canonical = lambda p: json.dumps(p, sort_keys=True, separators=(",", ":"))
    assert canonical(first) == canonical(second)


def test_dominance_request_lines_match_cli_format(engine):
    payload = engine.dominance_request(_schema(SCHEMA_A), _schema(SCHEMA_B), max_atoms=1)
    assert payload["verdict"] == "ok"
    assert payload["found"] is True
    assert payload["lines"][0].startswith("candidates: α=")
    assert payload["lines"][1] == "dominance witness found:"
    assert payload["witness"]["alpha"] and payload["witness"]["beta"]


def test_dominance_timeout_verdict_is_not_cached(engine):
    s1, s2 = _schema(SCHEMA_A), _schema(SCHEMA_C)
    size_before = len(engine.result_cache)
    payload = engine.dominance_request(s1, s2, max_atoms=1, deadline=0.0)
    assert payload["verdict"] == "timeout"
    assert payload["found"] is False
    assert "search inconclusive" in payload["lines"][-1]
    assert len(engine.result_cache) == size_before
    # A later, un-deadlined ask computes (and caches) the real answer.
    real = engine.dominance_request(s1, s2, max_atoms=1)
    assert real["verdict"] == "ok"
    assert len(engine.result_cache) == size_before + 1


def test_mapping_request_valid_and_cached(engine):
    s1, s2 = _schema(SCHEMA_A), _schema(SCHEMA_B)
    text = "person(X, Y) :- emp(X, Y).\n"
    payload = engine.mapping_request(s1, s2, text)
    assert payload["kind"] == "mapping-check"
    assert payload["valid"] is True
    assert payload["per_relation"] == {"person": True}
    assert payload["lines"][0] == "mapping valid: True"
    assert engine.mapping_request(s1, s2, text) is payload


def test_mapping_request_bad_head_raises(engine):
    with pytest.raises(MappingError, match="'zzz'"):
        engine.mapping_request(
            _schema(SCHEMA_A), _schema(SCHEMA_B), "zzz(X) :- emp(X, Y).\n"
        )


def test_fingerprint_key_is_canonical():
    fp1 = scan_fingerprint("search", [_schema(SCHEMA_A)], 2, None, None)
    fp2 = scan_fingerprint("search", [_schema(SCHEMA_A)], 2, None, None)
    assert fingerprint_key(fp1) == fingerprint_key(fp2)
    fp3 = scan_fingerprint("search", [_schema(SCHEMA_A)], 3, None, None)
    assert fingerprint_key(fp1) != fingerprint_key(fp3)


def test_result_cache_lru_bound():
    cache = ResultCache(maxsize=2)
    cache.put("a", {"v": 1})
    cache.put("b", {"v": 2})
    assert cache.get("a") == {"v": 1}  # refreshes "a"
    cache.put("c", {"v": 3})
    assert len(cache) == 2
    assert cache.get("b") is None  # LRU victim
    assert cache.get("c") == {"v": 3}


def test_result_cache_persistence_round_trip(tmp_path):
    path = tmp_path / "results.json"
    cache = ResultCache(path=path, maxsize=8)
    cache.put("k", {"verdict": "ok", "lines": ["x"]})
    assert cache.save() == path
    warm = ResultCache(path=path, maxsize=8)
    assert warm.get("k") == {"verdict": "ok", "lines": ["x"]}


def test_result_cache_ignores_corrupt_file(tmp_path):
    path = tmp_path / "results.json"
    path.write_text("{not json", encoding="utf-8")
    cache = ResultCache(path=path, maxsize=8)
    assert len(cache) == 0


def test_search_dominance_passthrough_defaults():
    eng = Engine(EngineConfig(max_atoms=1))
    with eng:
        result = eng.search_dominance(_schema(SCHEMA_A), _schema(SCHEMA_B))
    assert result.found
    assert result.complete
