"""Integration: extensions agree with the core over a whole universe.

Over the full E1 universe (all keyed schemas with 1 relation, 1 type,
arity ≤ 2), the extension components must be mutually consistent with the
bounded exhaustive search and with Theorem 13:

* a fired obstruction is *sound*: the search finds no witness;
* isomorphic pairs have no obstruction in either direction and equal
  instance counts at every fragment size;
* mutual dominance found by the search coincides with isomorphism.
"""

import pytest

from repro.core import (
    cq_equivalent,
    dominance_obstructions,
    search_dominance,
)
from repro.core.capacity import count_instances, uniform_sizes
from repro.relational import is_isomorphic
from repro.workloads import enumerate_keyed_schemas


@pytest.fixture(scope="module")
def universe():
    return list(enumerate_keyed_schemas(["T"], max_relations=1, max_arity=2))


@pytest.fixture(scope="module")
def search_results(universe):
    results = {}
    for i, s1 in enumerate(universe):
        for j, s2 in enumerate(universe):
            results[(i, j)] = search_dominance(s1, s2, max_atoms=2)
    return results


def test_obstructions_sound_over_universe(universe, search_results):
    for i, s1 in enumerate(universe):
        for j, s2 in enumerate(universe):
            if dominance_obstructions(s1, s2):
                assert not search_results[(i, j)].found, (i, j)


def test_mutual_dominance_is_isomorphism(universe, search_results):
    n = len(universe)
    for i in range(n):
        for j in range(n):
            mutual = search_results[(i, j)].found and search_results[(j, i)].found
            assert mutual == is_isomorphic(universe[i], universe[j]), (i, j)
            assert mutual == cq_equivalent(universe[i], universe[j]), (i, j)


def test_isomorphic_pairs_unobstructed_and_count_equal(universe):
    for i, s1 in enumerate(universe):
        for j, s2 in enumerate(universe):
            if is_isomorphic(s1, s2):
                assert not dominance_obstructions(s1, s2)
                for size in (1, 2, 3):
                    assert count_instances(
                        s1, uniform_sizes(s1, size)
                    ) == count_instances(s2, uniform_sizes(s2, size))


def test_dominance_found_implies_count_bounded(universe, search_results):
    """Capacity consistency: if S1 ⪯ S2 was witnessed, S1 never out-counts
    S2 on any fragment (the injectivity argument, checked empirically)."""
    for i, s1 in enumerate(universe):
        for j, s2 in enumerate(universe):
            if search_results[(i, j)].found:
                for size in (1, 2, 3):
                    sizes = uniform_sizes(s1, size) | uniform_sizes(s2, size)
                    assert count_instances(s1, sizes) <= count_instances(
                        s2, sizes
                    ), (i, j, size)
