"""Integration: one end-to-end story through the whole library.

Parse two schemas from text → decide equivalence → trace the proof →
compute the repair plan → execute it losslessly via the §1 migration
(the repair is exactly "move the attribute") → audit with the chase →
serialize the witnessing mappings → re-parse them → re-verify → and
finally confirm the transformed schema integrates with its partner.
"""

from repro.core import decide_equivalence, trace_theorem13
from repro.cq.chase import egds_of_schema
from repro.cq.composition import identity_view
from repro.cq.containment_deps import are_equivalent_under
from repro.mappings import parse_mapping, format_mapping
from repro.relational import is_isomorphic
from repro.transform import AttributeMigration, repair_plan
from repro.workloads import (
    integration_instance,
    paper_migration_spec,
    paper_schema_1,
    paper_schema_1_prime,
    paper_schema_2,
)


def test_full_pipeline_story():
    schema1, inclusions = paper_schema_1()
    schema1_prime, _ = paper_schema_1_prime()
    schema2, _ = paper_schema_2()

    # 1. Keys-only equivalence fails, and the trace explains why.
    decision = decide_equivalence(schema1, schema1_prime)
    assert not decision.equivalent
    # The migration only *moves* yearsExp, so the global non-key type
    # counts agree; the trace fails at the placement step (Lemmas 10-12).
    trace = trace_theorem13(schema1, schema1_prime)
    assert not trace.conclusion
    assert trace.steps[-1].name == "non-key placement"

    # 2. The repair plan is exactly the yearsExp move.
    plan = repair_plan(schema1, schema1_prime)
    assert plan.cost == 2
    modified = {e.source_relation for e in plan.edits if e.action == "modify"}
    assert modified == {"employee", "salespeople"}

    # 3. Execute the move losslessly via the inclusion dependencies.
    migration = AttributeMigration(schema1, inclusions, paper_migration_spec())
    result = migration.apply()
    assert is_isomorphic(result.schema, schema1_prime)
    audit = migration.audit(result)
    assert audit.round_trip_old and audit.round_trip_new

    # 4. Serialize the witnessing mappings and re-parse them.
    text_alpha = format_mapping(result.alpha, header="alpha")
    text_beta = format_mapping(result.beta, header="beta")
    alpha2 = parse_mapping(text_alpha, schema1, result.schema)
    beta2 = parse_mapping(text_beta, result.schema, schema1)

    # 5. Re-verify the round trip from the re-parsed mappings, both
    # pointwise and exactly (chase under keys + inclusions).
    d = integration_instance(seed=5, employees=8)
    assert beta2.apply(alpha2.apply(d)) == d
    theta = alpha2.then(beta2)
    egds = egds_of_schema(schema1)
    for relation in schema1:
        assert are_equivalent_under(
            theta.query(relation.name),
            identity_view(relation.name, relation.arity),
            schema1,
            egds,
            inclusions,
        )

    # 6. The integration pay-off: employee now matches empl structurally.
    employee = result.schema.relation("employee")
    empl = schema2.relation("empl")
    assert sorted(a.type_name for a in employee.attributes) == sorted(
        a.type_name for a in empl.attributes
    )
    assert len(employee.key) == len(empl.key)
