"""Integration: the full Theorem 9 construction on non-trivial pairs."""

import pytest

from repro.core.lemmas import check_lemma8, check_theorem9
from repro.cq.composition import identity_view
from repro.cq.homomorphism import are_equivalent
from repro.cq.parser import parse_query
from repro.mappings import QueryMapping, isomorphism_pair, kappa_construction
from repro.relational import find_isomorphism, parse_schema, random_instance
from repro.workloads import random_keyed_schema, shuffled_copy


def key_copy_pair():
    """A dominance pair that exercises δ's case 3: α duplicates the key
    into the non-key column c of S₂, and β involves c in an (identity)
    join condition — Lemma 7's premise.

    β reads the key back from M's key column (reading it from the non-key
    copy would not be a *valid* mapping: arbitrary key-satisfying M
    instances may repeat c), but its self-join on c makes c condition-
    involved, so δ must reconstruct c's value exactly — via Lemma 7's K′.
    """
    s1, _ = parse_schema("A(k*: K, v: V)")
    s2, _ = parse_schema("M(m*: K, c: K, v: V)")
    alpha = QueryMapping(s1, s2, {"M": parse_query("M(X, X, Y) :- A(X, Y).")})
    beta = QueryMapping(
        s2,
        s1,
        {"A": parse_query("A(X, Y) :- M(X, C, Y), M(X2, C2, Y2), C = C2.")},
    )
    return alpha, beta


def test_key_copy_pair_is_genuine():
    from repro.mappings import verify_dominance

    alpha, beta = key_copy_pair()
    assert verify_dominance(alpha, beta).holds


def test_theorem9_on_key_copy_pair():
    alpha, beta = key_copy_pair()
    assert check_theorem9(alpha, beta).holds


def test_lemma8_on_key_copy_pair():
    alpha, beta = key_copy_pair()
    construction = kappa_construction(alpha, beta)
    check = check_lemma8(construction, samples=4)
    assert check.holds, check.detail


def test_kappa_round_trip_pointwise_on_key_copy_pair():
    alpha, beta = key_copy_pair()
    construction = kappa_construction(alpha, beta)
    for seed in range(5):
        d_kappa = random_instance(
            construction.kappa_s1, rows_per_relation=4, seed=seed
        )
        image = construction.alpha_kappa.apply(d_kappa)
        assert construction.beta_kappa.apply(image) == d_kappa


def test_theorem9_exact_equals_pointwise_on_shuffled_schemas():
    """β_κ∘α_κ = id decided by CQ equivalence agrees with evaluation."""
    for seed in range(3):
        s1 = random_keyed_schema(seed, ["A", "B"], n_relations=2, max_arity=3)
        s2 = shuffled_copy(s1, seed=seed + 30)
        alpha, beta = isomorphism_pair(find_isomorphism(s1, s2))
        construction = kappa_construction(alpha, beta)
        theta = construction.alpha_kappa.then(construction.beta_kappa)
        for relation in construction.kappa_s1:
            identity = identity_view(relation.name, relation.arity)
            exact = are_equivalent(
                theta.query(relation.name), identity, construction.kappa_s1
            )
            assert exact
        d_kappa = random_instance(construction.kappa_s1, rows_per_relation=3, seed=seed)
        assert theta.apply(d_kappa) == d_kappa


def test_delta_never_invents_rows():
    """δ(π_κ(e)) has exactly the tuples of e (with reconstructed non-keys)."""
    alpha, beta = key_copy_pair()
    construction = kappa_construction(alpha, beta)
    d = random_instance(alpha.source, rows_per_relation=4, seed=2)
    e = alpha.apply(construction.gamma.apply(d.key_projection()))
    reconstructed = construction.delta.apply(e.key_projection())
    for relation in e.schema:
        assert len(reconstructed.relation(relation.name)) == len(
            e.relation(relation.name)
        )
