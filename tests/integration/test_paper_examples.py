"""Integration: every worked example the paper states, executed.

Each test cites the paper location it reproduces.
"""

import pytest

from repro.core import decide_equivalence
from repro.cq.parser import parse_query
from repro.cq.receives import analyze_view
from repro.cq.saturation import (
    is_ij_saturated,
    saturate,
)
from repro.cq.homomorphism import is_contained_in
from repro.relational import QualifiedAttribute, Value, is_isomorphic, parse_schema
from repro.transform import AttributeMigration
from repro.workloads import (
    integration_instance,
    paper_migration_spec,
    paper_schema_1,
    paper_schema_1_prime,
    paper_schema_2,
)


def test_section1_full_story():
    """§1: Schema 1 → Schema 1′ is equivalence-preserving *only* thanks to
    the inclusion dependencies; with keys alone, Theorem 13 separates them."""
    schema1, inclusions = paper_schema_1()
    schema1p, _ = paper_schema_1_prime()

    migration = AttributeMigration(schema1, inclusions, paper_migration_spec())
    result = migration.apply()
    assert is_isomorphic(result.schema, schema1p)

    audit = migration.audit(result)
    assert audit.round_trip_old and audit.round_trip_new
    assert not audit.equivalent_without_inclusions

    # Keys-only verdict, straight from Theorem 13:
    assert not decide_equivalence(schema1, schema1p).equivalent


def test_section1_integration_compatibility():
    """§1: after the transformation, employee and empl have matching shape
    (same attribute type multiset and key) so they can be integrated."""
    schema1p, _ = paper_schema_1_prime()
    schema2, _ = paper_schema_2()
    employee = schema1p.relation("employee")
    empl = schema2.relation("empl")
    assert sorted(a.type_name for a in employee.attributes) == sorted(
        a.type_name for a in empl.attributes
    )
    assert len(employee.key) == len(empl.key) == 1


def test_section2_receives_example():
    """§2: R(X,Y,Z) :- P(X,Y), Q(T,Z), Y = T — the second attribute of R
    receives P's second attribute and Q's first attribute."""
    s, _ = parse_schema("P(p1*: T, p2: T)\nQ0(q1*: T, q2: T)")
    q = parse_query("R(X, Y, Z) :- P(X, Y), Q0(T, Z), Y = T.")
    analysis = analyze_view(q, s)
    assert QualifiedAttribute("P", "p2", "T") in analysis.attributes[1]
    assert QualifiedAttribute("Q0", "q1", "T") in analysis.attributes[1]


def test_section2_constant_receives_example():
    """§2: R(a, Y, X) :- P(X, Y) — the first attribute receives the constant."""
    s, _ = parse_schema("P(p1*: T, p2: T)")
    q = parse_query("R(T:'a', Y, X) :- P(X, Y).")
    analysis = analyze_view(q, s)
    assert analysis.constants[0] == Value("T", "a")


def test_section2_ij_saturated_example():
    """§2: the three-occurrence query is ij-saturated (A = C inferred)."""
    q = parse_query(
        "Q(X, Y) :- R(X, Y), R(A, B), R(C, D), X = A, X = C, Y = B, Y = D."
    )
    assert is_ij_saturated(q)


def test_section2_not_ij_saturated_example():
    """§2: dropping Y = D breaks saturation (neither Y = D nor B = D follows)."""
    q = parse_query(
        "Q(X, Y) :- R(X, Y), R(A, B), R(C, D), X = A, X = C, A = C, Y = B."
    )
    assert not is_ij_saturated(q)


def test_section2_saturation_construction_example():
    """§2: the paper's q̄ construction adds Y = B, Y = D, B = D."""
    q = parse_query(
        "Q(X, Y) :- R(X, Y), R(A, B), R(C, D), X = A, X = C, A = C, Y = B."
    )
    saturated = saturate(q)
    assert is_ij_saturated(saturated)
    # q̄ ⊆ q (the paper notes this always holds).
    s, _ = parse_schema("R(a*: T, b: T)")
    assert is_contained_in(saturated, q, s)


def test_hull_theorem_unkeyed_special_case():
    """Hull's theorem quoted in §2, in our setting: the κ images of two
    equivalent keyed schemas must be identical up to renaming."""
    from repro.mappings import kappa_schema

    s1, _ = parse_schema("R(a*: T, b: U)\nS(c*: V)")
    s2, _ = parse_schema("P(x*: T, y: U)\nQ0(z*: V)")
    assert is_isomorphic(kappa_schema(s1), kappa_schema(s2))
