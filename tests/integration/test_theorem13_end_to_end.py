"""Integration: Theorem 13 end to end — decision, certificates, search.

These tests connect the layers: the isomorphism-based decision procedure,
the certificate machinery (exact validity + round-trip checks through the
chase), the executable lemmas, and the bounded exhaustive search, all on
the same schema pairs.
"""

import pytest

from repro.core import (
    check_all,
    decide_equivalence,
    search_equivalence,
    theorem13_scan,
    verify_theorem6,
)
from repro.relational import is_isomorphic, parse_schema, random_instance
from repro.workloads import enumerate_keyed_schemas, random_keyed_schema, shuffled_copy


def test_certificate_pipeline_on_shuffled_schemas():
    """Positive side: shuffle a schema, decide, verify everything."""
    for seed in range(4):
        s1 = random_keyed_schema(seed, ["A", "B"], n_relations=2, max_arity=3)
        s2 = shuffled_copy(s1, seed=seed + 10)
        decision = decide_equivalence(s1, s2)
        assert decision.equivalent
        certificate = decision.certificate
        assert certificate.verify()
        # The witnessing pairs satisfy every lemma of the paper.
        checks = check_all(certificate.forward.alpha, certificate.forward.beta)
        assert all(c.holds for c in checks)
        assert verify_theorem6(certificate.forward.alpha, certificate.forward.beta)


def test_certificate_mappings_round_trip_instances():
    s1 = random_keyed_schema(3, ["A", "B"], n_relations=2, max_arity=3)
    s2 = shuffled_copy(s1, seed=4)
    certificate = decide_equivalence(s1, s2).certificate
    for seed in range(3):
        d = random_instance(s1, rows_per_relation=5, seed=seed)
        image = certificate.forward.alpha.apply(d)
        assert image.satisfies_keys()
        assert certificate.forward.beta.apply(image) == d


def test_exhaustive_scan_tiny_universe():
    """E1 in miniature: all 1-relation schemas over one type, arity ≤ 2.

    The bounded search must find equivalence witnesses exactly for the
    isomorphic pairs (here: only the self-pairs, since the enumerator emits
    one schema per isomorphism class).
    """
    schemas = list(enumerate_keyed_schemas(["T"], max_relations=1, max_arity=2))
    assert len(schemas) == 3  # (k), (kk), (k|n)
    rows = theorem13_scan(schemas, max_atoms=2)
    for row in rows:
        assert row.consistent_with_theorem13, row
        if row.index1 == row.index2:
            assert row.equivalence_found


def test_search_agrees_with_isomorphism_on_renamed_pair():
    s1, _ = parse_schema("R(a*: T, b: U)")
    s2, _ = parse_schema("Different(x*: T, y: U)")
    assert is_isomorphic(s1, s2)
    result = search_equivalence(s1, s2, max_atoms=1)
    assert result.found
    assert result.forward.pair.holds()
    assert result.backward.pair.holds()


def test_search_rejects_near_miss_schemas():
    """Same types, same arities — but key sizes differ: never equivalent."""
    s1, _ = parse_schema("R(a*: T, b: T)")
    s2, _ = parse_schema("P(x*: T, y*: T)")
    assert not is_isomorphic(s1, s2)
    result = search_equivalence(s1, s2, max_atoms=2)
    assert not result.found
    decision = decide_equivalence(s1, s2)
    assert not decision.equivalent
