"""Integration: vertical partitioning — dominance without equivalence.

Splitting ``R(k*, a, b)`` into ``R1(k*, a)`` and ``R2(k*, b)`` is the
textbook vertical partitioning.  The paper's framework makes its status
precise:

* the single-relation schema IS dominated by the partitioned schema
  (split with α, re-join on the key with β; β∘α = id *because of* the key
  dependencies), but
* the schemas are NOT equivalent (Theorem 13: different relation counts),
  and the reverse dominance fails — a partitioned instance whose parts
  have mismatched key sets cannot be encoded in the single relation by
  conjunctive mappings (the bounded exhaustive search confirms no witness
  exists within generous bounds).

This is the positive counterpart to §1's moral: with keys alone, lossless
decomposition is a one-way street; recovering an equivalence needs extra
dependencies.
"""

import pytest

from repro.core import decide_equivalence, search_dominance
from repro.cq.parser import parse_query
from repro.mappings import DominancePair, QueryMapping, verify_dominance
from repro.relational import parse_schema, random_instance


@pytest.fixture(scope="module")
def schemas():
    whole, _ = parse_schema("R(k*: K, a: A, b: B)")
    parts, _ = parse_schema("R1(k*: K, a: A)\nR2(k2*: K, b: B)")
    return whole, parts


@pytest.fixture(scope="module")
def split_pair(schemas):
    whole, parts = schemas
    alpha = QueryMapping(
        whole,
        parts,
        {
            "R1": parse_query("R1(X, Y) :- R(X, Y, Z)."),
            "R2": parse_query("R2(X, Z) :- R(X, Y, Z)."),
        },
    )
    beta = QueryMapping(
        parts,
        whole,
        {
            "R": parse_query("R(X, Y, Z) :- R1(X, Y), R2(X2, Z), X = X2."),
        },
    )
    return DominancePair(alpha, beta)


def test_split_pair_verifies_exactly(split_pair):
    verdict = split_pair.verify()
    assert verdict.holds, verdict.reason()


def test_split_round_trips_concrete_instances(schemas, split_pair):
    whole, _ = schemas
    for seed in range(4):
        d = random_instance(whole, rows_per_relation=6, seed=seed)
        assert split_pair.round_trip(d) == d


def test_rejoin_identity_depends_on_key(schemas):
    """Re-joining works because k is a key: the same pair over the unkeyed
    variants is NOT a dominance pair (the self-join invents combinations on
    duplicate keys)."""
    whole, parts = schemas
    whole_unkeyed = whole.unkeyed()
    parts_unkeyed = parts.unkeyed()
    alpha = QueryMapping(
        whole_unkeyed,
        parts_unkeyed,
        {
            "R1": parse_query("R1(X, Y) :- R(X, Y, Z)."),
            "R2": parse_query("R2(X, Z) :- R(X, Y, Z)."),
        },
    )
    beta = QueryMapping(
        parts_unkeyed,
        whole_unkeyed,
        {"R": parse_query("R(X, Y, Z) :- R1(X, Y), R2(X2, Z), X = X2.")},
    )
    verdict = verify_dominance(alpha, beta)
    assert not verdict.round_trip_identity


def test_not_equivalent_by_theorem13(schemas):
    whole, parts = schemas
    decision = decide_equivalence(whole, parts)
    assert not decision.equivalent
    assert "relation-count" in decision.explanation.step.value


def test_reverse_dominance_exhaustively_refuted(schemas):
    """No constant-free CQ mapping pair witnesses parts ⪯ whole within
    2 body atoms per view — the partitioned schema genuinely holds more
    information (independent key sets)."""
    whole, parts = schemas
    result = search_dominance(parts, whole, max_atoms=2)
    assert not result.found
