"""Unit tests for the mapping builders (renaming, projection, padding)."""

import pytest

from repro.errors import MappingError
from repro.mappings import (
    isomorphism_pair,
    padding_mapping,
    projection_mapping,
    renaming_mapping,
)
from repro.relational import (
    Value,
    find_isomorphism,
    parse_schema,
    random_instance,
)


def test_renaming_mapping_transports_like_witness(isomorphic_pair):
    s1, s2 = isomorphic_pair
    witness = find_isomorphism(s1, s2)
    mapping = renaming_mapping(witness)
    for seed in range(3):
        d = random_instance(s1, rows_per_relation=4, seed=seed)
        assert mapping.apply(d) == witness.transport_instance(d)


def test_isomorphism_pair_round_trips(isomorphic_pair):
    s1, s2 = isomorphic_pair
    alpha, beta = isomorphism_pair(find_isomorphism(s1, s2))
    d = random_instance(s1, rows_per_relation=5, seed=11)
    assert beta.apply(alpha.apply(d)) == d
    e = random_instance(s2, rows_per_relation=5, seed=12)
    assert alpha.apply(beta.apply(e)) == e


def test_projection_mapping():
    s1, _ = parse_schema("A(k*: K, v: V, w: W)")
    s2, _ = parse_schema("P(p*: K, q: W)")
    mapping = projection_mapping(s1, s2, {"P": ("A", ("k", "w"))})
    d = random_instance(s1, rows_per_relation=4, seed=0)
    image = mapping.apply(d)
    assert image.relation("P").rows == d.relation("A").project(["k", "w"])


def test_projection_mapping_missing_rule():
    s1, _ = parse_schema("A(k*: K)")
    s2, _ = parse_schema("P(p*: K)")
    with pytest.raises(MappingError):
        projection_mapping(s1, s2, {})


def test_projection_mapping_arity_mismatch():
    s1, _ = parse_schema("A(k*: K, v: V)")
    s2, _ = parse_schema("P(p*: K, q: V)")
    with pytest.raises(MappingError):
        projection_mapping(s1, s2, {"P": ("A", ("k",))})


def test_padding_mapping():
    s1, _ = parse_schema("A(k*: K)")
    s2, _ = parse_schema("P(p*: K, pad: V)")
    mapping = padding_mapping(
        s1,
        s2,
        {"P": ("A", {"p": "k"})},
        {("P", "pad"): Value("V", "_f")},
    )
    d = random_instance(s1, rows_per_relation=3, seed=0)
    image = mapping.apply(d)
    pad_pos = s2.relation("P").position("pad")
    assert all(row[pad_pos] == Value("V", "_f") for row in image.relation("P"))


def test_padding_mapping_wrong_type_rejected():
    s1, _ = parse_schema("A(k*: K)")
    s2, _ = parse_schema("P(p*: K, pad: V)")
    with pytest.raises(MappingError):
        padding_mapping(
            s1, s2, {"P": ("A", {"p": "k"})}, {("P", "pad"): Value("K", 0)}
        )


def test_padding_mapping_missing_pad_rejected():
    s1, _ = parse_schema("A(k*: K)")
    s2, _ = parse_schema("P(p*: K, pad: V)")
    with pytest.raises(MappingError):
        padding_mapping(s1, s2, {"P": ("A", {"p": "k"})}, {})
