"""Unit tests for dominance pairs and their verification."""

import pytest

from repro.cq.parser import parse_query
from repro.errors import MappingError
from repro.mappings import DominancePair, QueryMapping, verify_dominance
from repro.relational import find_isomorphism, parse_schema, random_instance
from repro.mappings import isomorphism_pair


@pytest.fixture
def pair(isomorphic_pair):
    s1, s2 = isomorphic_pair
    witness = find_isomorphism(s1, s2)
    alpha, beta = isomorphism_pair(witness)
    return DominancePair(alpha, beta)


def test_isomorphism_pair_verifies(pair):
    verdict = pair.verify()
    assert verdict.holds
    assert verdict.reason() == "dominance verified"
    assert pair.holds()


def test_schema_mismatch_rejected(pair):
    with pytest.raises(MappingError):
        DominancePair(pair.alpha, pair.alpha)


def test_round_trip_pointwise(pair):
    d = random_instance(pair.dominated, rows_per_relation=4, seed=3)
    assert pair.round_trip(d) == d


def test_falsify_finds_nothing_for_genuine_pair(pair):
    assert pair.falsify(trials=8) is None


def test_broken_pair_detected_and_explained():
    s1, _ = parse_schema("A(a1*: T, a2: U)")
    s2, _ = parse_schema("M(m1*: T, m2: U)")
    alpha = QueryMapping(s1, s2, {"M": parse_query("M(X, Y) :- A(X, Y).")})
    bad_beta = QueryMapping(
        s2, s1, {"A": parse_query("A(X, Y2) :- M(X, Y), M(X2, Y2).")}
    )
    verdict = verify_dominance(alpha, bad_beta)
    assert not verdict.holds
    assert verdict.alpha_valid
    assert not verdict.round_trip_identity
    assert "identity" in verdict.reason()


def test_invalid_alpha_detected():
    s1, _ = parse_schema("A(a1*: T, a2: U)")
    s2, _ = parse_schema("M(m1*: U, m2: T)")
    alpha = QueryMapping(s1, s2, {"M": parse_query("M(Y, X) :- A(X, Y).")})
    # α alone already fails validity; verify via the report.
    from repro.mappings import validity_report

    assert not validity_report(alpha).valid


def test_falsify_finds_breaking_instance():
    s1, _ = parse_schema("A(a1*: T, a2: U)")
    s2, _ = parse_schema("M(m1*: T)")
    alpha = QueryMapping(s1, s2, {"M": parse_query("M(X) :- A(X, Y).")})
    # A lossy α with a constant-padding β cannot round-trip.
    beta = QueryMapping(
        s2, s1, {"A": parse_query("A(X, U:0) :- M(X).")}
    )
    pair = DominancePair(alpha, beta)
    found = pair.falsify(trials=32)
    assert found is not None
    assert pair.round_trip(found) != found
