"""Unit tests for exhaustive finite-fragment model checking."""

import pytest

from repro.cq.parser import parse_query
from repro.mappings import QueryMapping, isomorphism_pair
from repro.mappings.exhaustive import (
    count_fragment_instances,
    enumerate_instances,
    enumerate_relation_instances,
    exhaustive_round_trip_counterexample,
    exhaustive_validity_counterexample,
)
from repro.mappings.identity import composes_to_identity
from repro.mappings.validity import is_valid
from repro.relational import find_isomorphism, parse_schema, relation


def test_enumerate_relation_instances_counts():
    # R(k*: T) with |T| = 2, ≤ 2 rows: {} {0} {1} {0,1} = 4 instances.
    rel = relation("R", [("k", "T")], key=["k"])
    instances = list(enumerate_relation_instances(rel, {"T": 2}, max_rows=2))
    assert len(instances) == 4


def test_enumerate_relation_instances_respect_key():
    # R(k*: T, v: T) with |T| = 2: tuple space 4; 2-subsets sharing a key
    # value are filtered out.
    rel = relation("R", [("k", "T"), ("v", "T")], key=["k"])
    instances = list(enumerate_relation_instances(rel, {"T": 2}, max_rows=2))
    assert all(inst.satisfies_key() for inst in instances)
    # 1 empty + 4 singletons + C(4,2)=6 minus 2 same-key pairs = 4 pairs.
    assert len(instances) == 1 + 4 + 4


def test_enumerate_instances_product(two_relation_schema):
    sizes = {"T": 1, "U": 1}
    instances = list(
        enumerate_instances(two_relation_schema, sizes, max_rows=1)
    )
    # Each relation: empty or the single possible tuple → 2 × 2.
    assert len(instances) == 4
    assert len(instances) == count_fragment_instances(
        two_relation_schema, sizes, max_rows=1
    )


def test_round_trip_clean_on_isomorphism_pair(isomorphic_pair):
    s1, s2 = isomorphic_pair
    alpha, beta = isomorphism_pair(find_isomorphism(s1, s2))
    sizes = {name: 2 for name in s1.type_names()}
    assert (
        exhaustive_round_trip_counterexample(alpha, beta, sizes, max_rows=1)
        is None
    )


def test_round_trip_counterexample_agrees_with_chase():
    """Three verification paths agree: exhaustive, chase, and the verdict."""
    s1, _ = parse_schema("A(a1*: T, a2: U)")
    s2, _ = parse_schema("M(m1*: T, m2: U)")
    alpha = QueryMapping(s1, s2, {"M": parse_query("M(X, Y) :- A(X, Y).")})
    bad_beta = QueryMapping(
        s2, s1, {"A": parse_query("A(X, Y2) :- M(X, Y), M(X2, Y2).")}
    )
    sizes = {"T": 2, "U": 2}
    found = exhaustive_round_trip_counterexample(alpha, bad_beta, sizes, max_rows=2)
    assert found is not None
    assert bad_beta.apply(alpha.apply(found)) != found
    assert not composes_to_identity(alpha, bad_beta)

    good_beta = QueryMapping(
        s2, s1, {"A": parse_query("A(X, Y) :- M(X, Y).")}
    )
    assert (
        exhaustive_round_trip_counterexample(alpha, good_beta, sizes, max_rows=2)
        is None
    )
    assert composes_to_identity(alpha, good_beta)


def test_validity_counterexample_agrees_with_chase():
    s1, _ = parse_schema("A(a1*: T, a2: U)")
    s2, _ = parse_schema("M(m1*: U, m2: T)")
    bad = QueryMapping(s1, s2, {"M": parse_query("M(Y, X) :- A(X, Y).")})
    sizes = {"T": 2, "U": 2}
    found = exhaustive_validity_counterexample(bad, sizes, max_rows=2)
    assert found is not None
    assert found.satisfies_keys()
    assert not bad.apply(found).satisfies_keys()
    assert not is_valid(bad)

    # The same view keyed on the T column instead is valid:
    s2_good, _ = parse_schema("M(m1: U, m2*: T)")
    good = QueryMapping(s1, s2_good, {"M": parse_query("M(Y, X) :- A(X, Y).")})
    assert exhaustive_validity_counterexample(good, sizes, max_rows=2) is None
    assert is_valid(good)
