"""Unit tests for the exact β∘α = id check (relative to key dependencies)."""

import pytest

from repro.cq.parser import parse_query
from repro.errors import MappingError
from repro.mappings import (
    QueryMapping,
    composes_to_identity,
    find_identity_counterexample,
    identity_mapping,
    identity_report,
    round_trip,
)
from repro.relational import relation, schema


@pytest.fixture
def s1():
    return schema(relation("A", [("a1", "T"), ("a2", "U")], key=["a1"]))


@pytest.fixture
def s2():
    return schema(relation("M", [("m1", "T"), ("m2", "U")], key=["m1"]))


def make_pair(s1, s2, alpha_text, beta_text):
    alpha = QueryMapping(s1, s2, {"M": parse_query(alpha_text)})
    beta = QueryMapping(s2, s1, {"A": parse_query(beta_text)})
    return alpha, beta


def test_renaming_pair_is_identity(s1, s2):
    alpha, beta = make_pair(
        s1, s2, "M(X, Y) :- A(X, Y).", "A(X, Y) :- M(X, Y)."
    )
    assert composes_to_identity(alpha, beta)


def test_identity_on_identity_mapping(s1):
    ident = identity_mapping(s1)
    assert composes_to_identity(ident, ident)


def test_lossy_pair_is_not_identity(s1, s2):
    """β forgets the non-key column and refills it by self-join through M's
    key column only — returns everything, not the original."""
    alpha, beta = make_pair(
        s1, s2, "M(X, Y) :- A(X, Y).", "A(X, Y2) :- M(X, Y), M(X2, Y2)."
    )
    report = identity_report(alpha, beta)
    assert not report.is_identity
    # It still contains the identity (the original tuples are returned)...
    assert report.contains_identity["A"]
    # ...but it invents cross-combinations.
    assert not report.contained_in_identity["A"]


def test_key_dependence_of_identity(s1, s2):
    """A round trip that re-joins on the key is the identity only *because*
    of the key dependency — the paper's notion of valid-instances identity."""
    alpha, beta = make_pair(
        s1,
        s2,
        "M(X, Y) :- A(X, Y).",
        "A(X, Y2) :- M(X, Y), M(X2, Y2), X = X2.",
    )
    assert composes_to_identity(alpha, beta)


def test_counterexample_search_finds_violation(s1, s2):
    alpha, beta = make_pair(
        s1, s2, "M(X, Y) :- A(X, Y).", "A(X, Y2) :- M(X, Y), M(X2, Y2)."
    )
    found = find_identity_counterexample(alpha, beta, trials=64)
    assert found is not None
    assert found.satisfies_keys()
    assert beta.apply(alpha.apply(found)) != found


def test_counterexample_absent_for_genuine_identity(s1, s2):
    alpha, beta = make_pair(
        s1, s2, "M(X, Y) :- A(X, Y).", "A(X, Y) :- M(X, Y)."
    )
    assert find_identity_counterexample(alpha, beta, trials=16) is None


def test_round_trip_schema_checks(s1, s2):
    alpha, beta = make_pair(
        s1, s2, "M(X, Y) :- A(X, Y).", "A(X, Y) :- M(X, Y)."
    )
    theta = round_trip(alpha, beta)
    assert theta.source == s1 and theta.target == s1
    with pytest.raises(MappingError):
        round_trip(alpha, alpha)


def test_constant_padding_loses_information(s1, s2):
    alpha, beta = make_pair(
        s1, s2, "M(X, U:5) :- A(X, Y).", "A(X, Y) :- M(X, Y)."
    )
    assert not composes_to_identity(alpha, beta)
