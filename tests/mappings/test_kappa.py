"""Unit tests for the κ construction (γ, δ, π_κ, α_κ, β_κ)."""

import pytest

from repro.cq.parser import parse_query
from repro.errors import SchemaError
from repro.mappings import (
    QueryMapping,
    delta_mapping,
    gamma_mapping,
    identity_mapping,
    involved_in_condition,
    isomorphism_pair,
    kappa_construction,
    kappa_schema,
    lemma7_key_attribute,
    pi_kappa_mapping,
)
from repro.relational import (
    Domain,
    QualifiedAttribute,
    find_isomorphism,
    parse_schema,
    random_instance,
)


@pytest.fixture
def s1():
    s, _ = parse_schema("A(k*: K, v: V)\nB(j*: J)")
    return s


@pytest.fixture
def domain(s1):
    d = Domain()
    for t in ("K", "V", "J"):
        d.type(t)
    return d


def test_kappa_schema_drops_nonkeys(s1):
    kappa = kappa_schema(s1)
    assert kappa.is_unkeyed
    assert kappa.relation("A").arity == 1
    assert kappa.relation("B").arity == 1
    assert [a.name for a in kappa.relation("A").attributes] == ["k"]


def test_kappa_schema_requires_keyed(s1):
    with pytest.raises(SchemaError):
        kappa_schema(s1.unkeyed())


def test_pi_kappa_mapping_agrees_with_instance_projection(s1):
    pi = pi_kappa_mapping(s1)
    for seed in range(3):
        d = random_instance(s1, rows_per_relation=4, seed=seed)
        assert pi.apply(d) == d.key_projection()


def test_gamma_pads_with_choice_constants(s1, domain):
    gamma = gamma_mapping(s1, domain)
    d_kappa = random_instance(kappa_schema(s1), rows_per_relation=3, seed=1)
    padded = gamma.apply(d_kappa)
    v_pos = padded.schema.relation("A").position("v")
    for row in padded.relation("A"):
        assert row[v_pos] == domain.choice("V")


def test_pi_gamma_round_trip(s1, domain):
    """π_κ(γ(d_κ)) = d_κ — stated right after γ's definition in the paper."""
    gamma = gamma_mapping(s1, domain)
    pi = pi_kappa_mapping(s1)
    for seed in range(4):
        d_kappa = random_instance(kappa_schema(s1), rows_per_relation=4, seed=seed)
        assert pi.apply(gamma.apply(d_kappa)) == d_kappa


def test_involved_in_condition(s1):
    ident = identity_mapping(s1)
    assert not involved_in_condition(ident, QualifiedAttribute("A", "v", "V"))
    joined = QueryMapping(
        s1,
        s1,
        {
            "A": parse_query("A(X, Y) :- A(X, Y), A(X2, Y2), Y = Y2."),
            "B": parse_query("B(X) :- B(X)."),
        },
    )
    assert involved_in_condition(joined, QualifiedAttribute("A", "v", "V"))


def test_involved_in_condition_constant_selection(s1):
    selected = QueryMapping(
        s1,
        s1,
        {
            "A": parse_query("A(X, Y) :- A(X, Y), Y = V:1."),
            "B": parse_query("B(X) :- B(X)."),
        },
    )
    assert involved_in_condition(selected, QualifiedAttribute("A", "v", "V"))


def test_lemma7_key_attribute_found():
    """α copies the key into a non-key column of S₂: K' is that key."""
    s1, _ = parse_schema("A(k*: K, v: V)")
    s2, _ = parse_schema("M(m*: K, c: K, v: V)")
    alpha = QueryMapping(s1, s2, {"M": parse_query("M(X, X, Y) :- A(X, Y).")})
    k_prime = lemma7_key_attribute(
        alpha,
        QualifiedAttribute("M", "c", "K"),
        QualifiedAttribute("A", "k", "K"),
    )
    assert k_prime == QualifiedAttribute("M", "m", "K")


def test_lemma7_key_attribute_absent():
    """α writes the key only into a non-key column: no K' exists."""
    s1, _ = parse_schema("A(k*: K)")
    s2, _ = parse_schema("M(m*: K, c: K)")
    alpha = QueryMapping(
        s1, s2, {"M": parse_query("M(X, Y) :- A(X), A(Y).")}
    )
    assert (
        lemma7_key_attribute(
            alpha,
            QualifiedAttribute("M", "c", "K"),
            QualifiedAttribute("A", "k", "K"),
        )
        is None
    )


def test_kappa_construction_for_isomorphism_pair(isomorphic_pair):
    s1, s2 = isomorphic_pair
    alpha, beta = isomorphism_pair(find_isomorphism(s1, s2))
    construction = kappa_construction(alpha, beta)
    assert construction.kappa_s1.is_unkeyed
    assert construction.alpha_kappa.source == construction.kappa_s1
    assert construction.alpha_kappa.target == construction.kappa_s2
    assert construction.beta_kappa.source == construction.kappa_s2
    assert construction.beta_kappa.target == construction.kappa_s1


def test_kappa_round_trip_pointwise(isomorphic_pair):
    """β_κ(α_κ(d_κ)) = d_κ pointwise — Theorem 9's conclusion, concretely."""
    s1, s2 = isomorphic_pair
    alpha, beta = isomorphism_pair(find_isomorphism(s1, s2))
    construction = kappa_construction(alpha, beta)
    for seed in range(4):
        d_kappa = random_instance(
            construction.kappa_s1, rows_per_relation=4, seed=seed
        )
        image = construction.alpha_kappa.apply(d_kappa)
        assert construction.beta_kappa.apply(image) == d_kappa


def test_delta_case1_constant():
    """B receives a constant under α → δ writes that constant."""
    s1, _ = parse_schema("A(k*: K)")
    s2, _ = parse_schema("M(m*: K, c: V)")
    alpha = QueryMapping(s1, s2, {"M": parse_query("M(X, V:9) :- A(X).")})
    beta = QueryMapping(s2, s1, {"A": parse_query("A(X) :- M(X, Y).")})
    domain = Domain()
    for t in ("K", "V"):
        domain.type(t)
    delta = delta_mapping(alpha, beta, domain)
    from repro.cq.syntax import Constant
    from repro.relational import Value

    head = delta.query("M").head
    assert head.terms[1] == Constant(Value("V", 9))


def test_delta_case3_key_variable():
    """B receives a key attribute and is received back → δ uses K'."""
    s1, _ = parse_schema("A(k*: K, v: V)")
    s2, _ = parse_schema("M(m*: K, c: K, v: V)")
    alpha = QueryMapping(s1, s2, {"M": parse_query("M(X, X, Y) :- A(X, Y).")})
    beta = QueryMapping(s2, s1, {"A": parse_query("A(C, Y) :- M(X, C, Y).")})
    domain = Domain()
    for t in ("K", "V"):
        domain.type(t)
    delta = delta_mapping(alpha, beta, domain)
    head = delta.query("M").head
    # Position of c must hold the same variable as position of m.
    assert head.terms[1] == head.terms[0]
