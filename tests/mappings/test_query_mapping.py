"""Unit tests for query mappings and their composition."""

import pytest

from repro.cq.parser import parse_query
from repro.errors import MappingError
from repro.mappings import QueryMapping, identity_mapping
from repro.relational import Value, random_instance, relation, schema


@pytest.fixture
def s1():
    return schema(
        relation("A", [("a1", "T"), ("a2", "U")], key=["a1"]),
        relation("B", [("b1", "U")], key=["b1"]),
    )


@pytest.fixture
def s2():
    return schema(
        relation("M", [("m1", "T"), ("m2", "U")], key=["m1"]),
        relation("N", [("n1", "U")], key=["n1"]),
    )


@pytest.fixture
def alpha(s1, s2):
    return QueryMapping(
        s1,
        s2,
        {
            "M": parse_query("M(X, Y) :- A(X, Y)."),
            "N": parse_query("N(Y) :- B(Y)."),
        },
    )


def test_mapping_requires_all_views(s1, s2):
    with pytest.raises(MappingError):
        QueryMapping(s1, s2, {"M": parse_query("M(X, Y) :- A(X, Y).")})


def test_mapping_rejects_extra_views(s1, s2, alpha):
    queries = alpha.queries()
    queries["Z"] = parse_query("Z(X) :- B(X).")
    with pytest.raises(MappingError):
        QueryMapping(s1, s2, queries)


def test_mapping_typechecks_views(s1, s2):
    with pytest.raises(Exception):
        QueryMapping(
            s1,
            s2,
            {
                "M": parse_query("M(Y, X) :- A(X, Y)."),  # wrong type order
                "N": parse_query("N(Y) :- B(Y)."),
            },
        )


def test_apply(alpha, s1):
    d = random_instance(s1, rows_per_relation=5, seed=0)
    image = alpha.apply(d)
    assert image.schema == alpha.target
    assert image.relation("M").rows == {
        tuple(row) for row in d.relation("A").rows
    }


def test_apply_rejects_wrong_schema(alpha, s2):
    foreign = random_instance(s2, rows_per_relation=2, seed=0)
    with pytest.raises(MappingError):
        alpha.apply(foreign)


def test_callable_sugar(alpha, s1):
    d = random_instance(s1, rows_per_relation=3, seed=1)
    assert alpha(d) == alpha.apply(d)


def test_view_lookup(alpha):
    assert alpha.view("M").relation.name == "M"
    assert alpha.query("N").view_name == "N"
    with pytest.raises(MappingError):
        alpha.view("Z")


def test_composition_agrees_with_pointwise(alpha, s1, s2):
    beta = QueryMapping(
        s2,
        s1,
        {
            "A": parse_query("A(X, Y) :- M(X, Y)."),
            "B": parse_query("B(Y) :- N(Y)."),
        },
    )
    theta = alpha.then(beta)
    assert theta.source == s1 and theta.target == s1
    for seed in range(4):
        d = random_instance(s1, rows_per_relation=4, seed=seed)
        assert theta.apply(d) == beta.apply(alpha.apply(d))


def test_then_after_are_converses(alpha, s1, s2):
    beta = QueryMapping(
        s2,
        s1,
        {
            "A": parse_query("A(X, Y) :- M(X, Y)."),
            "B": parse_query("B(Y) :- N(Y)."),
        },
    )
    assert alpha.then(beta).queries() == beta.after(alpha).queries()


def test_composition_schema_mismatch_rejected(alpha):
    with pytest.raises(MappingError):
        alpha.then(alpha)


def test_identity_mapping_is_pointwise_identity(s1):
    ident = identity_mapping(s1)
    for seed in range(3):
        d = random_instance(s1, rows_per_relation=4, seed=seed)
        assert ident.apply(d) == d


def test_constants_collection(s1, s2):
    mapping = QueryMapping(
        s1,
        s2,
        {
            "M": parse_query("M(X, U:7) :- A(X, Y)."),
            "N": parse_query("N(Y) :- B(Y), Y = U:3."),
        },
    )
    assert mapping.constants() == frozenset({Value("U", 7), Value("U", 3)})


def test_receives_exposed(alpha):
    receives = alpha.receives()
    from repro.relational import QualifiedAttribute

    assert receives.receives(
        QualifiedAttribute("M", "m1", "T"), QualifiedAttribute("A", "a1", "T")
    )
