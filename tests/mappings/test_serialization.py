"""Unit tests for mapping text serialization."""

import pytest

from repro.cq.parser import parse_query
from repro.errors import MappingError
from repro.mappings import QueryMapping
from repro.mappings.serialization import format_mapping, parse_mapping
from repro.relational import parse_schema, random_instance


@pytest.fixture
def schemas():
    s1, _ = parse_schema("A(a1*: T, a2: U)\nB(b1*: U)")
    s2, _ = parse_schema("M(m1*: T, m2: U)\nN(n1*: U)")
    return s1, s2


@pytest.fixture
def mapping(schemas):
    s1, s2 = schemas
    return QueryMapping(
        s1,
        s2,
        {
            "M": parse_query("M(X, Y) :- A(X, Y)."),
            "N": parse_query("N(Y) :- B(Y)."),
        },
    )


def test_round_trip(schemas, mapping):
    s1, s2 = schemas
    text = format_mapping(mapping, header="α : S1 → S2")
    parsed = parse_mapping(text, s1, s2)
    assert parsed.queries() == mapping.queries()


def test_round_trip_preserves_semantics(schemas, mapping):
    s1, s2 = schemas
    parsed = parse_mapping(format_mapping(mapping), s1, s2)
    for seed in range(3):
        d = random_instance(s1, rows_per_relation=4, seed=seed)
        assert parsed.apply(d) == mapping.apply(d)


def test_header_is_comment(mapping):
    text = format_mapping(mapping, header="a comment")
    assert text.startswith("# a comment\n")


def test_parse_rejects_duplicates(schemas):
    s1, s2 = schemas
    text = "M(X, Y) :- A(X, Y).\nM(X, Y) :- A(X, Y).\nN(Y) :- B(Y).\n"
    with pytest.raises(MappingError):
        parse_mapping(text, s1, s2)


def test_parse_rejects_missing_view(schemas):
    s1, s2 = schemas
    with pytest.raises(MappingError):
        parse_mapping("M(X, Y) :- A(X, Y).\n", s1, s2)


def test_parse_rejects_head_not_in_target(schemas):
    """A head naming a non-target relation fails fast, naming the head."""
    s1, s2 = schemas
    text = "M(X, Y) :- A(X, Y).\nQ(Y) :- B(Y).\n"
    with pytest.raises(MappingError, match="'Q'"):
        parse_mapping(text, s1, s2)


def test_bad_head_reported_even_when_all_views_present(schemas):
    """An extra bad-head view is reported by name, not as "extra views"."""
    s1, s2 = schemas
    text = "M(X, Y) :- A(X, Y).\nN(Y) :- B(Y).\nQ(Y) :- B(Y).\n"
    with pytest.raises(MappingError, match="'Q'"):
        parse_mapping(text, s1, s2)


def test_round_trip_with_header_and_comments(schemas, mapping):
    """Headers and interleaved comments survive a format→parse round trip."""
    s1, s2 = schemas
    text = format_mapping(mapping, header="α : S1 → S2")
    commented = "# leading note\n" + text.replace(
        "N(", "# interleaved comment\nN(", 1
    )
    parsed = parse_mapping(commented, s1, s2)
    assert parsed.queries() == mapping.queries()


class _EmptyViews:
    """format_mapping only iterates views; model a view-less mapping."""

    def __iter__(self):
        return iter(())


def test_empty_mapping_formats_to_empty_string():
    """No views and no header must yield "", not a bare newline."""
    assert format_mapping(_EmptyViews()) == ""


def test_header_only_mapping_keeps_trailing_newline():
    assert format_mapping(_EmptyViews(), header="note") == "# note\n"


def test_parse_with_constants(schemas):
    s1, s2 = schemas
    text = "M(X, U:5) :- A(X, Y).\nN(Y) :- B(Y).\n"
    parsed = parse_mapping(text, s1, s2)
    from repro.relational import Value

    assert Value("U", 5) in parsed.constants()
