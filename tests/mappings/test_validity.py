"""Unit tests for exact mapping validity (key preservation)."""

import pytest

from repro.cq.parser import parse_query
from repro.mappings import (
    QueryMapping,
    find_validity_counterexample,
    is_valid,
    validity_report,
)
from repro.relational import relation, schema


@pytest.fixture
def s1():
    return schema(relation("A", [("a1", "T"), ("a2", "U")], key=["a1"]))


def single_view_mapping(s1, target_rel, text):
    target = schema(target_rel)
    return QueryMapping(s1, target, {target_rel.name: parse_query(text)})


def test_key_preserving_projection_is_valid(s1):
    target = relation("V", [("v1", "T"), ("v2", "U")], key=["v1"])
    mapping = single_view_mapping(s1, target, "V(X, Y) :- A(X, Y).")
    report = validity_report(mapping)
    assert report.valid
    assert report.counterexample() is None


def test_key_dropping_projection_is_invalid(s1):
    """Keying the view on the non-key source column breaks."""
    target = relation("V", [("v1", "T"), ("v2", "U")], key=["v2"])
    mapping = single_view_mapping(s1, target, "V(X, Y) :- A(X, Y).")
    report = validity_report(mapping)
    assert not report.valid
    counterexample = report.counterexample()
    assert counterexample is not None
    # The returned instance genuinely violates: it satisfies the source key
    # but its image does not satisfy the target key.
    assert counterexample.satisfies_keys()
    assert not mapping.apply(counterexample).satisfies_keys()


def test_swapped_key_still_valid_when_whole_key_kept(s1):
    """Key column exported twice: key on either copy is preserved."""
    target = relation("V", [("v1", "T"), ("v2", "T")], key=["v2"])
    mapping = single_view_mapping(s1, target, "V(X, X) :- A(X, Y).")
    assert is_valid(mapping)


def test_unkeyed_target_always_valid(s1):
    target = relation("V", [("v1", "U")])
    mapping = single_view_mapping(s1, target, "V(Y) :- A(X, Y).")
    assert is_valid(mapping)


def test_unary_view_keyed_on_itself_is_trivially_valid(s1):
    """A set of unary tuples always satisfies a key on its only column."""
    target = relation("V", [("v1", "U")], key=["v1"])
    mapping = single_view_mapping(s1, target, "V(Y) :- A(X, Y).")
    assert is_valid(mapping)


def test_nonkey_projection_keyed_on_nonkey_is_invalid(s1):
    """Keying the view on the source's non-key column: duplicates collide."""
    target = relation("V", [("v1", "U"), ("v2", "T")], key=["v1"])
    mapping = single_view_mapping(s1, target, "V(Y, X) :- A(X, Y).")
    assert not is_valid(mapping)


def test_join_view_key_through_source_key(s1):
    """Self-join on the key: key of the view follows from the source key."""
    target = relation("V", [("v1", "T"), ("v2", "U"), ("v3", "U")], key=["v1"])
    mapping = single_view_mapping(
        s1, target, "V(X, Y, Y2) :- A(X, Y), A(X2, Y2), X = X2."
    )
    assert is_valid(mapping)


def test_cross_product_view_is_invalid(s1):
    """A cross product keyed on one side's key duplicates key values."""
    target = relation("V", [("v1", "T"), ("v2", "U")], key=["v1"])
    mapping = single_view_mapping(
        s1, target, "V(X, Y2) :- A(X, Y), A(X2, Y2)."
    )
    assert not is_valid(mapping)


def test_constant_column_is_functionally_determined(s1):
    target = relation("V", [("v1", "T"), ("v2", "U")], key=["v1"])
    mapping = single_view_mapping(s1, target, "V(X, U:5) :- A(X, Y).")
    assert is_valid(mapping)


def test_randomized_falsifier_agrees_with_exact(s1):
    valid_target = relation("V", [("v1", "T"), ("v2", "U")], key=["v1"])
    valid = single_view_mapping(s1, valid_target, "V(X, Y) :- A(X, Y).")
    assert find_validity_counterexample(valid, trials=16) is None

    invalid_target = relation("V", [("v1", "U"), ("v2", "T")], key=["v1"])
    invalid = single_view_mapping(s1, invalid_target, "V(Y, X) :- A(X, Y).")
    found = find_validity_counterexample(invalid, trials=64)
    assert found is not None
    assert found.satisfies_keys()
    assert not invalid.apply(found).satisfies_keys()


def test_per_relation_report(s1):
    target = schema(
        relation("Good", [("g1", "T"), ("g2", "U")], key=["g1"]),
        relation("Bad", [("b1", "U"), ("b2", "T")], key=["b1"]),
    )
    mapping = QueryMapping(
        s1,
        target,
        {
            "Good": parse_query("Good(X, Y) :- A(X, Y)."),
            "Bad": parse_query("Bad(Y, X) :- A(X, Y)."),
        },
    )
    report = validity_report(mapping)
    assert not report.valid
    assert report.per_relation["Good"].holds
    assert not report.per_relation["Bad"].holds
