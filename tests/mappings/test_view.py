"""Unit tests for typechecked views."""

import pytest

from repro.cq.parser import parse_query
from repro.errors import TypecheckError
from repro.mappings.view import View
from repro.relational import Value, random_instance, relation, schema


@pytest.fixture
def s():
    return schema(relation("R", [("a", "T"), ("b", "U")], key=["a"]))


def test_view_typechecks_at_construction(s):
    rel = relation("V", [("x", "U"), ("y", "T")])
    view = View(s, rel, parse_query("V(Y, X) :- R(X, Y)."))
    assert view.type_signature == ("U", "T")
    assert view.relation is rel


def test_view_rejects_type_mismatch(s):
    rel = relation("V", [("x", "T"), ("y", "U")])
    with pytest.raises(TypecheckError):
        View(s, rel, parse_query("V(Y, X) :- R(X, Y)."))


def test_view_answer_uses_view_schema(s):
    rel = relation("V", [("x", "T")])
    view = View(s, rel, parse_query("V(X) :- R(X, Y)."))
    d = random_instance(s, rows_per_relation=4, seed=0)
    answer = view.answer(d)
    assert answer.schema is rel
    assert answer.rows == d.relation("R").project(["a"])
