"""Unit tests for the HTML report (:mod:`repro.obs.dashboard`)."""

from repro.obs.dashboard import (
    render_dashboard,
    verdict_counts,
    verdict_summary_line,
    write_dashboard,
)
from repro.obs.events import retry_event, timeout_event, verdict_event
from repro.obs.tracing import SpanRecord


def _record(span_id="s0001", parent=None, name="root", start=0.0, end=1.0, proc=""):
    return SpanRecord(span_id, parent, name, start, end, proc)


RECORDS = [
    _record("s0001", None, "scan", 0.0, 1.0),
    _record("s0002", "s0001", "pair", 0.2, 0.6),
    _record("w0:s0001", None, "chunk", 0.0, 0.5, proc="w0"),
]
VERDICTS = [
    verdict_event(found=True, i=0, j=0, isomorphic=True, consistent=True),
    verdict_event(found=False, i=0, j=1, isomorphic=False, consistent=True,
                  verdict="timeout"),
    verdict_event(found=False, i=1, j=1, isomorphic=False, consistent=True,
                  verdict="unknown"),
]


def test_verdict_counts_default_ok():
    counts = verdict_counts(VERDICTS)
    assert counts == {"ok": 1, "timeout": 1, "unknown": 1}
    assert verdict_counts([]) == {"ok": 0, "timeout": 0, "unknown": 0}


def test_verdict_summary_line_format():
    assert verdict_summary_line(VERDICTS) == "verdicts: ok=1 timeout=1 unknown=1"
    assert verdict_summary_line([]) == "verdicts: ok=0 timeout=0 unknown=0"


def test_dashboard_is_self_contained_html():
    text = render_dashboard(RECORDS, verdicts=VERDICTS, title="t13 run")
    assert text.startswith("<!DOCTYPE html>")
    assert "<title>t13 run</title>" in text
    # No external assets: self-contained means no src/href references out.
    assert "http://" not in text and "https://" not in text
    assert "<script" not in text


def test_dashboard_embeds_exact_verdict_summary_line():
    text = render_dashboard(RECORDS, verdicts=VERDICTS)
    assert verdict_summary_line(VERDICTS) in text
    assert 'id="verdict-summary"' in text


def test_pair_grid_colors_by_verdict():
    text = render_dashboard(RECORDS, verdicts=VERDICTS)
    assert 'class="ok"' in text
    assert 'class="timeout"' in text
    assert 'class="unknown"' in text
    # Symmetric closure: cell (1, 0) falls back to the (0, 1) event.
    assert text.count('class="timeout"') == 2


def test_pair_grid_marks_theorem13_violations():
    violation = [verdict_event(found=True, i=0, j=1, isomorphic=False,
                               consistent=False)]
    assert 'class="viol"' in render_dashboard([], verdicts=violation)


def test_flamegraph_has_one_lane_per_process_and_sample_tooltips():
    text = render_dashboard(RECORDS, samples={"s0002": 9})
    assert '<div class="label">main</div>' in text
    assert '<div class="label">w0</div>' in text
    assert "self_samples=9" in text


def test_incident_timeline_lists_events_in_order():
    incidents = [retry_event(3, 1, "crash"), timeout_event("pair", i=0, j=1)]
    text = render_dashboard([], incidents=incidents)
    assert text.index(">retry<") < text.index(">timeout<")
    assert "no incidents" not in text
    assert "no incidents" in render_dashboard([])


def test_metrics_snapshot_collapsed_by_default():
    text = render_dashboard([], metrics={"cache.evaluate.hits": 5})
    assert "<details>" in text
    assert "cache.evaluate.hits" in text


def test_write_dashboard_returns_byte_length(tmp_path):
    path = tmp_path / "report.html"
    size = write_dashboard(path, RECORDS, verdicts=VERDICTS)
    assert size == len(path.read_bytes())
    assert size > 0
