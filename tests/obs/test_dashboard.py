"""Unit tests for the HTML report (:mod:`repro.obs.dashboard`)."""

from repro.obs.dashboard import (
    render_dashboard,
    verdict_counts,
    verdict_summary_line,
    write_dashboard,
)
from repro.obs.events import retry_event, timeout_event, verdict_event
from repro.obs.tracing import SpanRecord


def _record(span_id="s0001", parent=None, name="root", start=0.0, end=1.0, proc=""):
    return SpanRecord(span_id, parent, name, start, end, proc)


RECORDS = [
    _record("s0001", None, "scan", 0.0, 1.0),
    _record("s0002", "s0001", "pair", 0.2, 0.6),
    _record("w0:s0001", None, "chunk", 0.0, 0.5, proc="w0"),
]
VERDICTS = [
    verdict_event(found=True, i=0, j=0, isomorphic=True, consistent=True),
    verdict_event(found=False, i=0, j=1, isomorphic=False, consistent=True,
                  verdict="timeout"),
    verdict_event(found=False, i=1, j=1, isomorphic=False, consistent=True,
                  verdict="unknown"),
]


def test_verdict_counts_default_ok():
    counts = verdict_counts(VERDICTS)
    assert counts == {"ok": 1, "timeout": 1, "unknown": 1}
    assert verdict_counts([]) == {"ok": 0, "timeout": 0, "unknown": 0}


def test_verdict_summary_line_format():
    assert verdict_summary_line(VERDICTS) == "verdicts: ok=1 timeout=1 unknown=1"
    assert verdict_summary_line([]) == "verdicts: ok=0 timeout=0 unknown=0"


def test_dashboard_is_self_contained_html():
    text = render_dashboard(RECORDS, verdicts=VERDICTS, title="t13 run")
    assert text.startswith("<!DOCTYPE html>")
    assert "<title>t13 run</title>" in text
    # No external assets: self-contained means no src/href references out.
    assert "http://" not in text and "https://" not in text
    assert "<script" not in text


def test_dashboard_embeds_exact_verdict_summary_line():
    text = render_dashboard(RECORDS, verdicts=VERDICTS)
    assert verdict_summary_line(VERDICTS) in text
    assert 'id="verdict-summary"' in text


def test_pair_grid_colors_by_verdict():
    text = render_dashboard(RECORDS, verdicts=VERDICTS)
    assert 'class="ok"' in text
    assert 'class="timeout"' in text
    assert 'class="unknown"' in text
    # Symmetric closure: cell (1, 0) falls back to the (0, 1) event.
    assert text.count('class="timeout"') == 2


def test_pair_grid_marks_theorem13_violations():
    violation = [verdict_event(found=True, i=0, j=1, isomorphic=False,
                               consistent=False)]
    assert 'class="viol"' in render_dashboard([], verdicts=violation)


def test_flamegraph_has_one_lane_per_process_and_sample_tooltips():
    text = render_dashboard(RECORDS, samples={"s0002": 9})
    assert '<div class="label">main</div>' in text
    assert '<div class="label">w0</div>' in text
    assert "self_samples=9" in text


def test_incident_timeline_lists_events_in_order():
    incidents = [retry_event(3, 1, "crash"), timeout_event("pair", i=0, j=1)]
    text = render_dashboard([], incidents=incidents)
    assert text.index(">retry<") < text.index(">timeout<")
    assert "no incidents" not in text
    assert "no incidents" in render_dashboard([])


def test_metrics_snapshot_collapsed_by_default():
    text = render_dashboard([], metrics={"cache.evaluate.hits": 5})
    assert "<details>" in text
    assert "cache.evaluate.hits" in text


def test_write_dashboard_returns_byte_length(tmp_path):
    path = tmp_path / "report.html"
    size = write_dashboard(path, RECORDS, verdicts=VERDICTS)
    assert size == len(path.read_bytes())
    assert size > 0


def test_grid_cells_carry_provenance_class_and_tooltip():
    provenance = {
        (0, 1): {"provenance": "symmetric", "symmetric_to": [0, 2]},
        (1, 1): {"provenance": "carried"},
        (0, 0): {"provenance": "scanned"},
    }
    text = render_dashboard(RECORDS, verdicts=VERDICTS, provenance=provenance)
    assert 'class="timeout p-sym"' in text
    assert "p-car" in text
    assert "provenance=symmetric of (0, 2)" in text
    assert "provenance: scanned=1 symmetric=1 carried=1" in text
    assert 'id="provenance-summary"' in text


def test_provenance_absent_means_no_summary_line():
    text = render_dashboard(RECORDS, verdicts=VERDICTS)
    assert "provenance-summary" not in text


def test_provenance_does_not_perturb_verdict_summary_line():
    from repro.obs.dashboard import verdict_summary_line as _line

    provenance = {(0, 0): {"provenance": "scanned"}}
    with_p = render_dashboard(RECORDS, verdicts=VERDICTS, provenance=provenance)
    without = render_dashboard(RECORDS, verdicts=VERDICTS)
    # The CLI prints this exact line; the dashboard must embed it
    # byte-identically whether or not provenance coloring is on.
    assert _line(VERDICTS) in with_p and _line(VERDICTS) in without


def test_lease_gantt_renders_bars_and_marks_steals():
    from repro.obs.events import lease_event

    leases = [
        lease_event("acquire", owner="w1", shard=0, wall=10.0, generation=0),
        lease_event("lost", owner="w1", shard=0, wall=12.0, generation=0),
        lease_event("steal", owner="w2", shard=0, wall=13.0, generation=1),
        lease_event("release", owner="w2", shard=0, wall=15.0, generation=1),
        lease_event("acquire", owner="w2", shard=1, wall=15.0, generation=0),
    ]
    text = render_dashboard(RECORDS, verdicts=VERDICTS, leases=leases)
    assert "lease ownership" in text
    assert 'class="gantt"' in text
    assert 'class="bar stolen"' in text
    # The never-released shard-1 bar extends to the trace end, marked open.
    assert "(open)" in text
    assert text.count('class="proc"') >= 2  # one gantt row per owner


def test_no_lease_events_means_no_gantt_section():
    text = render_dashboard(RECORDS, verdicts=VERDICTS, leases=[])
    assert "lease ownership" not in text


def test_fleet_section_lists_workers_and_shard_summary():
    fleet = {
        "workers": [
            {"owner": "w1", "state": "done", "phase": "done", "shard": None,
             "cells_done": 9, "rate": 3.5, "frames": 12, "torn": 0},
            {"owner": "w2", "state": "dead", "phase": "scan", "shard": 4,
             "cells_done": 2, "rate": None, "frames": 3, "torn": 1},
        ],
        "shards": {"done": 4, "total": 4, "stolen": 1},
        "complete": True,
    }
    text = render_dashboard(RECORDS, verdicts=VERDICTS, fleet=fleet)
    assert "fleet" in text
    assert "w1" in text and "w2" in text
    assert "3.5/s" in text
    assert "shards: 4/4 done, 1 stolen — complete" in text


def test_fabric_tiles_absent_without_fabric_counters():
    # Guard: a plain (non-fabric) run's metrics JSON must produce no
    # fabric/lease tiles — not tiles full of zeros.
    text = render_dashboard(
        RECORDS, metrics={"cache.evaluate.hits": 5, "search.pairs_tried": 3}
    )
    assert "shards leased" not in text
    assert "fabric cells" not in text


def test_fabric_tiles_render_worker_and_merge_counter_spellings():
    text = render_dashboard(
        RECORDS,
        metrics={
            "fabric.shards.leased": 8,
            "fabric.shards.stolen": 2,
            "fabric.cells.scanned": 15,
            "fabric.merge.cells.scanned": 15,
            "fabric.merge.cells.symmetric": 3,
        },
    )
    assert "shards leased/stolen/reclaimed" in text
    assert "fabric cells scanned/sym/carried" in text
    assert "merged cells scanned/sym/carried" in text
