"""Unit tests for the JSONL event schema (:mod:`repro.obs.events`)."""

import json

from repro.obs import events
from repro.obs.events import (
    SCHEMA_VERSION,
    counter_event,
    read_trace,
    span_events,
    trace_events,
    validate_event,
    validate_line,
    verdict_event,
    write_trace,
)
from repro.obs.tracing import SpanRecord


def _record(span_id="s0001", parent=None, name="root", start=0.0, end=1.0, proc=""):
    return SpanRecord(span_id, parent, name, start, end, proc)


def test_span_events_are_schema_valid():
    start, end = span_events(_record())
    assert validate_event(start) == []
    assert validate_event(end) == []
    assert start["type"] == "span_start" and start["parent"] is None
    assert end["type"] == "span_end" and end["dur"] == 1.0


def test_counter_and_verdict_events_are_schema_valid():
    assert validate_event(counter_event("cache.evaluate.hits", 12)) == []
    assert validate_event(verdict_event(found=True)) == []
    full = verdict_event(found=False, i=0, j=1, isomorphic=False, consistent=True)
    assert validate_event(full) == []
    assert full["i"] == 0 and full["consistent"] is True


def test_validate_rejects_non_object():
    assert validate_event([1, 2]) != []
    assert validate_event("x") != []


def test_validate_rejects_wrong_version():
    event = counter_event("x", 1)
    event["v"] = 99
    assert any("version" in err for err in validate_event(event))


def test_validate_rejects_unknown_type():
    assert any(
        "unknown event type" in err
        for err in validate_event({"v": SCHEMA_VERSION, "type": "mystery"})
    )


def test_validate_rejects_missing_required_field():
    event = counter_event("x", 1)
    del event["value"]
    assert any("missing required field 'value'" in err for err in validate_event(event))


def test_validate_rejects_wrong_field_type():
    event = counter_event("x", 1)
    event["value"] = "not-a-number"
    assert any("expected" in err for err in validate_event(event))


def test_validate_closes_bool_int_trap():
    # A bool is an int subclass; the schema must not accept True as a number.
    event = counter_event("x", 1)
    event["value"] = True
    assert validate_event(event) != []
    # And conversely 1 is not an acceptable "found".
    verdict = verdict_event(found=True)
    verdict["found"] = 1
    assert validate_event(verdict) != []


def test_validate_rejects_unexpected_field():
    event = counter_event("x", 1)
    event["surprise"] = 7
    assert any("unexpected field" in err for err in validate_event(event))


def test_validate_line_catches_bad_json():
    assert any("not valid JSON" in err for err in validate_line("{nope"))
    assert validate_line(json.dumps(counter_event("x", 1))) == []


def test_trace_events_ordering():
    records = [
        _record("s0002", "s0001", "child", 0.1, 0.4),
        _record("s0001", None, "root", 0.0, 1.0),
        _record("w0:s0001", None, "work", 0.0, 0.3, proc="w0"),
    ]
    stream = trace_events(records, counters={"b": 2, "a": 1}, verdicts=[verdict_event(True)])
    # Within each proc, events are time-ordered with starts before ends at ties.
    parent_stream = [(e["type"], e["id"]) for e in stream if e.get("proc") == ""]
    assert parent_stream == [
        ("span_start", "s0001"),
        ("span_start", "s0002"),
        ("span_end", "s0002"),
        ("span_end", "s0001"),
    ]
    # Verdicts come after spans, counters last and name-sorted.
    assert stream[-3]["type"] == "search_verdict"
    assert [e["name"] for e in stream[-2:]] == ["a", "b"]
    assert all(validate_event(e) == [] for e in stream)


def test_write_and_read_trace_round_trip(tmp_path):
    path = tmp_path / "trace.jsonl"
    records = [_record(), _record("s0002", "s0001", "child", 0.2, 0.8)]
    count = write_trace(
        path, records, counters={"search.pairs_tried": 4}, verdicts=[verdict_event(False)]
    )
    lines = path.read_text(encoding="utf-8").splitlines()
    assert len(lines) == count == 2 * len(records) + 1 + 1
    assert all(validate_line(line) == [] for line in lines)
    parsed = read_trace(path)
    assert parsed == trace_events(
        records, counters={"search.pairs_tried": 4}, verdicts=[verdict_event(False)]
    )


def test_every_schema_type_has_an_emitter_example():
    # Guard against the schema drifting from the emitters: every declared
    # event type must be producible and valid.
    start, end = span_events(_record())
    by_type = {
        "span_start": start,
        "span_end": end,
        "counter": counter_event("x", 0),
        "search_verdict": verdict_event(found=True),
        "fault": events.fault_event("scan.cell", "kill", key="0,1", attempt=0),
        "retry": events.retry_event(3, 1, "crash", delay=0.05),
        "timeout": events.timeout_event("pair", i=0, j=1, seconds=0.5),
    }
    assert set(by_type) == set(events.EVENT_TYPES)
    for event in by_type.values():
        assert validate_event(event) == []
