"""Unit tests for the JSONL event schema (:mod:`repro.obs.events`)."""

import json

from repro.obs import events
from repro.obs.events import (
    SCHEMA_VERSION,
    counter_event,
    read_trace,
    span_events,
    trace_events,
    validate_event,
    validate_line,
    verdict_event,
    write_trace,
)
from repro.obs.tracing import SpanRecord


def _record(span_id="s0001", parent=None, name="root", start=0.0, end=1.0, proc=""):
    return SpanRecord(span_id, parent, name, start, end, proc)


def test_span_events_are_schema_valid():
    start, end = span_events(_record())
    assert validate_event(start) == []
    assert validate_event(end) == []
    assert start["type"] == "span_start" and start["parent"] is None
    assert end["type"] == "span_end" and end["dur"] == 1.0


def test_counter_and_verdict_events_are_schema_valid():
    assert validate_event(counter_event("cache.evaluate.hits", 12)) == []
    assert validate_event(verdict_event(found=True)) == []
    full = verdict_event(found=False, i=0, j=1, isomorphic=False, consistent=True)
    assert validate_event(full) == []
    assert full["i"] == 0 and full["consistent"] is True


def test_validate_rejects_non_object():
    assert validate_event([1, 2]) != []
    assert validate_event("x") != []


def test_validate_rejects_wrong_version():
    event = counter_event("x", 1)
    event["v"] = 99
    assert any("version" in err for err in validate_event(event))


def test_validate_rejects_unknown_type():
    assert any(
        "unknown event type" in err
        for err in validate_event({"v": SCHEMA_VERSION, "type": "mystery"})
    )


def test_validate_rejects_missing_required_field():
    event = counter_event("x", 1)
    del event["value"]
    assert any("missing required field 'value'" in err for err in validate_event(event))


def test_validate_rejects_wrong_field_type():
    event = counter_event("x", 1)
    event["value"] = "not-a-number"
    assert any("expected" in err for err in validate_event(event))


def test_validate_closes_bool_int_trap():
    # A bool is an int subclass; the schema must not accept True as a number.
    event = counter_event("x", 1)
    event["value"] = True
    assert validate_event(event) != []
    # And conversely 1 is not an acceptable "found".
    verdict = verdict_event(found=True)
    verdict["found"] = 1
    assert validate_event(verdict) != []


def test_validate_rejects_unexpected_field():
    event = counter_event("x", 1)
    event["surprise"] = 7
    assert any("unexpected field" in err for err in validate_event(event))


def test_validate_line_catches_bad_json():
    assert any("not valid JSON" in err for err in validate_line("{nope"))
    assert validate_line(json.dumps(counter_event("x", 1))) == []


def test_trace_events_ordering():
    records = [
        _record("s0002", "s0001", "child", 0.1, 0.4),
        _record("s0001", None, "root", 0.0, 1.0),
        _record("w0:s0001", None, "work", 0.0, 0.3, proc="w0"),
    ]
    stream = trace_events(records, counters={"b": 2, "a": 1}, verdicts=[verdict_event(True)])
    # Within each proc, events are time-ordered with starts before ends at ties.
    parent_stream = [(e["type"], e["id"]) for e in stream if e.get("proc") == ""]
    assert parent_stream == [
        ("span_start", "s0001"),
        ("span_start", "s0002"),
        ("span_end", "s0002"),
        ("span_end", "s0001"),
    ]
    # Verdicts come after spans, counters last and name-sorted.
    assert stream[-3]["type"] == "search_verdict"
    assert [e["name"] for e in stream[-2:]] == ["a", "b"]
    assert all(validate_event(e) == [] for e in stream)


def test_write_and_read_trace_round_trip(tmp_path):
    path = tmp_path / "trace.jsonl"
    records = [_record(), _record("s0002", "s0001", "child", 0.2, 0.8)]
    count = write_trace(
        path, records, counters={"search.pairs_tried": 4}, verdicts=[verdict_event(False)]
    )
    lines = path.read_text(encoding="utf-8").splitlines()
    assert len(lines) == count == 2 * len(records) + 1 + 1
    assert all(validate_line(line) == [] for line in lines)
    parsed = read_trace(path)
    assert parsed == trace_events(
        records, counters={"search.pairs_tried": 4}, verdicts=[verdict_event(False)]
    )


def test_every_schema_type_has_an_emitter_example():
    # Guard against the schema drifting from the emitters: every declared
    # event type must be producible and valid.
    start, end = span_events(_record())
    by_type = {
        "span_start": start,
        "span_end": end,
        "counter": counter_event("x", 0),
        "search_verdict": verdict_event(found=True),
        "fault": events.fault_event("scan.cell", "kill", key="0,1", attempt=0),
        "retry": events.retry_event(3, 1, "crash", delay=0.05),
        "timeout": events.timeout_event("pair", i=0, j=1, seconds=0.5),
        "telemetry": events.telemetry_event(
            "w1", seq=0, wall=1.0, phase="scan"
        ),
        "lease": events.lease_event("acquire", owner="w1", shard=0, wall=1.0),
    }
    assert set(by_type) == set(events.EVENT_TYPES)
    for event in by_type.values():
        assert validate_event(event) == []


def test_lenient_demotes_unknown_optional_field_to_warning():
    event = counter_event("x", 1)
    event["surprise"] = 7
    # Strict: an error.  Lenient: a warning, not an error.
    assert validate_event(event) != []
    assert events.validate_event(event, lenient=True) == []
    errors, warnings = events.validate_event_report(event, lenient=True)
    assert errors == []
    assert any("surprise" in w for w in warnings)


def test_lenient_still_rejects_real_violations():
    event = counter_event("x", 1)
    del event["value"]
    event["extra"] = "fine"
    errors, warnings = events.validate_event_report(event, lenient=True)
    assert any("missing required field 'value'" in e for e in errors)
    assert any("extra" in w for w in warnings)
    # Unknown types and bad field types stay errors even in lenient mode.
    assert events.validate_event(
        {"v": SCHEMA_VERSION, "type": "mystery"}, lenient=True
    ) != []
    bad = counter_event("x", 1)
    bad["value"] = "nan"
    assert events.validate_event(bad, lenient=True) != []


def test_validate_line_lenient_path():
    event = counter_event("x", 1)
    event["annotation"] = "v1.1 emitter"
    line = json.dumps(event)
    assert events.validate_line(line) != []
    assert events.validate_line(line, lenient=True) == []
    errors, warnings = events.validate_line_report(line, lenient=True)
    assert errors == [] and warnings != []


def test_spans_from_events_round_trips_a_trace():
    records = [
        _record("s0002", "s0001", "child", 0.2, 0.8),
        _record("s0001", None, "root", 0.0, 1.0),
        _record("w0:s0001", None, "work", 0.0, 0.3, proc="w0"),
    ]
    recovered = events.spans_from_events(trace_events(records))
    # Completion (span_end) order within each proc; same record contents.
    assert sorted(recovered) == sorted(records)


def test_spans_from_events_stitched_segments_repeat_ids():
    # A resumed scan's trace: two journal segments concatenated, each
    # restarting span ids at s0001.
    segment1 = trace_events([_record("s0001", None, "scan", 0.0, 1.0)])
    segment2 = trace_events([_record("s0001", None, "scan", 0.0, 2.0)])
    recovered = events.spans_from_events(segment1 + segment2)
    assert len(recovered) == 2
    assert [r.end for r in recovered] == [1.0, 2.0]
    # The repeated id is disambiguated so consumers keying on span ids
    # (fold, flamegraph, sample attribution) see two distinct spans.
    assert [r.span_id for r in recovered] == ["s0001", "s0001#2"]


def test_spans_from_events_drops_unmatched_and_orphans():
    stream = [
        {"v": SCHEMA_VERSION, "type": "span_start", "id": "s0001",
         "name": "truncated", "parent": None, "t": 0.0, "proc": ""},
        {"v": SCHEMA_VERSION, "type": "span_end", "id": "zzz",
         "name": "orphan", "t": 1.0, "dur": 1.0, "proc": ""},
        counter_event("x", 1),
    ]
    assert events.spans_from_events(stream) == []


def test_telemetry_event_carries_optional_fields_and_validates():
    frame = events.telemetry_event(
        "host-1", seq=3, wall=12.5, phase="scan", pid=44, shard=7,
        generation=1, cells_done=12, cells_total=40, rate=3.4, ttl=30.0,
        uptime=9.0, metrics={"fabric.cells.scanned": 12},
    )
    assert events.validate_event(frame) == []
    assert frame["v"] == SCHEMA_VERSION
    assert frame["shard"] == 7 and frame["metrics"] == {
        "fabric.cells.scanned": 12
    }
    # None-valued optionals are omitted, not serialised as null.
    bare = events.telemetry_event("host-1", seq=0, wall=1.0, phase="idle")
    assert "shard" not in bare and "rate" not in bare


def test_telemetry_event_rejects_unknown_phase():
    import pytest

    with pytest.raises(ValueError, match="unknown telemetry phase"):
        events.telemetry_event("w", seq=0, wall=0.0, phase="zombie")


def test_lease_event_validates_and_rejects_unknown_action():
    import pytest

    event = events.lease_event(
        "steal", owner="w2", shard=5, wall=9.0, generation=1, t=0.25
    )
    assert events.validate_event(event) == []
    assert event["action"] == "steal" and event["t"] == 0.25
    with pytest.raises(ValueError, match="unknown lease action"):
        events.lease_event("borrow", owner="w2", shard=5, wall=9.0)


def test_schema_v1_events_still_validate():
    # A v1 trace (pre-fleet) must keep validating under the v2 checker.
    old = counter_event("x", 1)
    old["v"] = 1
    assert validate_event(old) == []
    assert 1 in events.SUPPORTED_VERSIONS and SCHEMA_VERSION == 2


def test_unsupported_future_version_is_rejected():
    event = counter_event("x", 1)
    event["v"] = 3
    assert any("unsupported schema version" in e for e in validate_event(event))


def test_peek_incidents_reads_without_draining():
    events.drain_incidents()
    try:
        events.record_incident(
            events.lease_event("acquire", owner="w1", shard=0, wall=1.0)
        )
        peeked = events.peek_incidents()
        assert [e["type"] for e in peeked] == ["lease"]
        # Still there: peeking must not consume the buffer.
        assert events.peek_incidents() == peeked
        assert [e["type"] for e in events.drain_incidents()] == ["lease"]
        assert events.peek_incidents() == []
    finally:
        events.drain_incidents()
