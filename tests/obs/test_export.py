"""Unit tests for the Chrome/Prometheus exporters (:mod:`repro.obs.export`)."""

import json

from repro.obs.events import timeout_event, verdict_event
from repro.obs.export import (
    chrome_trace,
    chrome_trace_events,
    prometheus_name,
    prometheus_text,
    spans_from_chrome,
    write_chrome_trace,
    write_prometheus,
)
from repro.obs.tracing import SpanRecord


def _record(span_id="s0001", parent=None, name="root", start=0.0, end=1.0, proc=""):
    return SpanRecord(span_id, parent, name, start, end, proc)


RECORDS = [
    _record("s0001", None, "scan", 0.0, 1.0),
    _record("s0002", "s0001", "pair", 0.25, 0.5),
    _record("w0:s0001", None, "chunk", 0.0, 0.75, proc="w0"),
]


def test_span_events_are_complete_events_in_microseconds():
    events = chrome_trace_events(RECORDS)
    spans = [e for e in events if e.get("cat") == "span"]
    assert all(e["ph"] == "X" for e in spans)
    pair = next(e for e in spans if e["name"] == "pair")
    assert pair["ts"] == 250000.0 and pair["dur"] == 250000.0
    assert pair["args"] == {"id": "s0002", "parent": "s0001"}


def test_processes_become_named_swimlanes():
    events = chrome_trace_events(RECORDS)
    meta = {
        e["pid"]: e["args"]["name"]
        for e in events
        if e["ph"] == "M" and e["name"] == "process_name"
    }
    assert meta == {0: "main", 1: "w0"}
    chunk = next(e for e in events if e.get("name") == "chunk")
    assert chunk["pid"] == 1


def test_samples_ride_in_span_args():
    events = chrome_trace_events(RECORDS, samples={"s0002": 7, "stray": 3})
    pair = next(e for e in events if e.get("name") == "pair")
    assert pair["args"]["self_samples"] == 7
    scan = next(e for e in events if e.get("name") == "scan")
    assert "self_samples" not in scan["args"]


def test_incidents_and_verdicts_become_instants_counters_ride_along():
    events = chrome_trace_events(
        RECORDS,
        counters={"cache.hits": 12},
        verdicts=[verdict_event(found=True)],
        incidents=[timeout_event("pair", i=0, j=1)],
    )
    instants = [e for e in events if e["ph"] == "i"]
    assert [e["cat"] for e in instants] == ["incident", "verdict"]
    assert instants[0]["args"]["type"] == "timeout"
    # Instants are spread out past the trace end, not stacked.
    assert instants[0]["ts"] < instants[1]["ts"]
    counter = next(e for e in events if e["ph"] == "C")
    assert counter["name"] == "cache.hits" and counter["args"]["value"] == 12


def test_round_trip_is_lossless():
    trace = chrome_trace(RECORDS, samples={"s0001": 2})
    assert spans_from_chrome(trace) == sorted(
        RECORDS, key=lambda r: (0 if r.proc == "" else 1, r.start, r.end)
    )


def test_write_chrome_trace_is_valid_json(tmp_path):
    path = tmp_path / "out.trace.json"
    count = write_chrome_trace(path, RECORDS, verdicts=[verdict_event(found=False)])
    trace = json.loads(path.read_text())
    assert len(trace["traceEvents"]) == count
    assert trace["displayTimeUnit"] == "ms"
    assert spans_from_chrome(trace) == spans_from_chrome(chrome_trace(RECORDS))


def test_prometheus_name_sanitizes():
    assert prometheus_name("cache.evaluate.hits") == "repro_cache_evaluate_hits"
    assert prometheus_name("0weird-name") == "repro__0weird_name"


def test_prometheus_text_exposition_format():
    text = prometheus_text(
        {"cache.hits": 3, "cache.misses": 1}, gauges={"pool.size": 2.5}
    )
    lines = text.splitlines()
    # HELP/TYPE/value triples, name-sorted, counters before gauges.
    assert lines[0] == "# HELP repro_cache_hits repro metric `cache.hits`"
    assert lines[1] == "# TYPE repro_cache_hits counter"
    assert lines[2] == "repro_cache_hits 3"
    assert "# TYPE repro_pool_size gauge" in lines
    assert text.endswith("\n")
    assert prometheus_text({}) == ""


def test_prometheus_collision_disambiguated_with_suffix():
    """Distinct dotted names sanitizing identically get distinct series."""
    text = prometheus_text({"a.b": 1, "a_b": 2})
    lines = text.splitlines()
    # Sorted order: "a.b" before "a_b", so "a.b" keeps the bare name.
    assert "repro_a_b 1" in lines
    assert "repro_a_b_2 2" in lines
    assert "# HELP repro_a_b_2 repro metric `a_b`" in lines
    # Every exposed series name is unique.
    exposed = [line.split()[0] for line in lines if not line.startswith("#")]
    assert len(exposed) == len(set(exposed))


def test_prometheus_collision_three_way_is_deterministic():
    text1 = prometheus_text({"a.b": 1, "a_b": 2, "a-b": 3})
    text2 = prometheus_text({"a-b": 3, "a_b": 2, "a.b": 1})
    assert text1 == text2
    lines = text1.splitlines()
    # Sorted: "a-b" < "a.b" < "a_b" → bare, _2, _3.
    assert "repro_a_b 3" in lines
    assert "repro_a_b_2 1" in lines
    assert "repro_a_b_3 2" in lines


def test_prometheus_counter_gauge_collision_split():
    """The same series claimed by a counter and a gauge must split."""
    text = prometheus_text({"a.b": 1}, gauges={"a_b": 2})
    lines = text.splitlines()
    assert "# TYPE repro_a_b counter" in lines
    assert "# TYPE repro_a_b_2 gauge" in lines


def test_prometheus_suffix_collision_with_existing_name():
    """A literal name already ending in _2 must not be stomped."""
    text = prometheus_text({"a.b": 1, "a_b": 2, "a_b_2": 3})
    lines = text.splitlines()
    exposed = [line.split()[0] for line in lines if not line.startswith("#")]
    assert len(exposed) == len(set(exposed)) == 3


def test_write_prometheus_counts_metrics(tmp_path):
    path = tmp_path / "metrics.prom"
    count = write_prometheus(path, {"a.b": 1}, gauges={"c.d": 2})
    assert count == 2
    assert path.read_text().count("# TYPE") == 2


def _worker_trace(owner, offset=0.0):
    """A small per-worker event stream with one lease instant."""
    from repro.obs.events import lease_event, trace_events

    records = [
        _record("s0001", None, "fabric.shard", 0.0 + offset, 1.0 + offset),
        _record("s0002", "s0001", "scan.cell", 0.2 + offset, 0.6 + offset),
    ]
    return trace_events(
        records,
        incidents=[
            lease_event(
                "acquire", owner=owner, shard=0, wall=50.0 + offset,
                t=0.05 + offset,
            )
        ],
    )


def test_stitch_worker_events_relabels_procs_per_owner():
    from repro.obs.export import stitch_worker_events

    stitched = stitch_worker_events(
        {"w-b": _worker_trace("w-b", 1.0), "w-a": _worker_trace("w-a")}
    )
    assert sorted({r.proc for r in stitched.records}) == ["w-a", "w-b"]
    # Each worker keeps its own span tree under its own lane.
    by_proc = {}
    for record in stitched.records:
        by_proc.setdefault(record.proc, []).append(record)
    assert all(len(spans) == 2 for spans in by_proc.values())
    assert [e["owner"] for e in stitched.instants] == ["w-a", "w-b"]


def test_stitch_prefixes_subprocess_lanes_with_their_owner():
    from repro.obs.events import trace_events
    from repro.obs.export import stitch_worker_events

    trace = trace_events([
        _record("s0001", None, "scan", 0.0, 1.0),
        _record("w0:s0001", None, "chunk", 0.0, 0.5, proc="w0"),
    ])
    stitched = stitch_worker_events({"host-1": trace})
    assert sorted({r.proc for r in stitched.records}) == [
        "host-1", "host-1/w0",
    ]


def test_stitched_chrome_trace_inverts_losslessly_with_lease_instants():
    from repro.obs.export import (
        instants_from_chrome,
        stitch_worker_events,
        stitched_chrome_trace,
    )

    traces = {
        f"w-{i}": _worker_trace(f"w-{i}", float(i)) for i in range(3)
    }
    stitched = stitch_worker_events(traces)
    trace = stitched_chrome_trace(stitched)
    # Three swimlanes, no spurious "main" lane.
    lanes = {
        e["args"]["name"] for e in trace["traceEvents"]
        if e.get("ph") == "M" and e.get("name") == "process_name"
    }
    assert lanes == {"w-0", "w-1", "w-2"}
    # Spans invert exactly (chrome order: by pid, then start/end).
    recovered = spans_from_chrome(trace)
    pid_order = sorted({r.proc for r in stitched.records})
    assert recovered == sorted(
        stitched.records,
        key=lambda r: (pid_order.index(r.proc), r.start, r.end),
    )
    # Lease instants survive the round trip bit-for-bit.
    instants = instants_from_chrome(trace)
    assert instants == list(stitched.instants)
    # Each lease instant is pinned to its owner's swimlane.
    pids = {
        e["args"]["name"]: e["pid"] for e in trace["traceEvents"]
        if e.get("ph") == "M" and e.get("name") == "process_name"
    }
    for event in trace["traceEvents"]:
        if event.get("cat") == "lease":
            assert event["pid"] == pids[event["args"]["owner"]]


def test_write_stitched_chrome_trace_round_trips_via_file(tmp_path):
    from repro.obs.export import (
        instants_from_chrome,
        stitch_worker_events,
        write_stitched_chrome_trace,
    )

    stitched = stitch_worker_events({"w-a": _worker_trace("w-a")})
    path = tmp_path / "stitched.trace.json"
    write_stitched_chrome_trace(path, stitched)
    trace = json.loads(path.read_text())
    assert spans_from_chrome(trace)
    assert instants_from_chrome(trace) == list(stitched.instants)


def test_stitch_tolerates_empty_and_spanless_traces():
    from repro.obs.export import stitch_worker_events, stitched_chrome_trace

    stitched = stitch_worker_events({"w-a": [], "w-b": _worker_trace("w-b")})
    assert {r.proc for r in stitched.records} == {"w-b"}
    trace = stitched_chrome_trace(stitched)
    assert spans_from_chrome(trace)
