"""Unit tests for fleet aggregation (:mod:`repro.obs.fleet`).

The liveness state machine is tested against synthetic telemetry logs;
the snapshot join runs over a real (small) fabric so the lease/journal
paths are the production ones.
"""

import json

import pytest

from repro.errors import FabricError
from repro.obs.fleet import (
    DEFAULT_TTL,
    STALL_FACTOR,
    _worker_status,
    fleet_snapshot,
    render_fleet,
)
from repro.obs.telemetry import TelemetryLog, TelemetryWriter, frame_path
from repro.scanfabric import run_fabric_worker
from repro.scanfabric import journal as fabric_journal
from repro.workloads import enumerate_keyed_schemas


def _universe():
    return list(
        enumerate_keyed_schemas(("T", "U"), max_relations=2, max_arity=1)
    )


def _frame(wall, phase="scan", **extra):
    event = {"v": 2, "type": "telemetry", "owner": "w1", "seq": 0,
             "wall": wall, "phase": phase}
    event.update(extra)
    return event


def _log(*frames, torn=0):
    return TelemetryLog("w1", list(frames), [], torn)


def test_worker_liveness_thresholds():
    now, ttl = 100.0, 10.0
    assert _worker_status(_log(_frame(95.0)), now, ttl).state == "active"
    assert _worker_status(_log(_frame(95.0, phase="idle")), now, ttl).state == "idle"
    # Silent for more than one TTL: a straggler about to be stolen from.
    assert _worker_status(_log(_frame(85.0)), now, ttl).state == "stalled"
    # Silent past STALL_FACTOR TTLs: dead.
    assert _worker_status(
        _log(_frame(now - STALL_FACTOR * ttl - 1.0)), now, ttl
    ).state == "dead"
    # A terminal "done" frame wins regardless of age.
    assert _worker_status(
        _log(_frame(0.0, phase="done")), now, ttl
    ).state == "done"
    assert _worker_status(_log(), now, ttl).state == "dead"


def test_worker_status_reports_newest_non_null_fields():
    # The terminal frame drops shard/cell fields; the counts must
    # survive from the last frame that carried them.
    status = _worker_status(
        _log(
            _frame(90.0, shard=4, generation=1, cells_done=7,
                   cells_total=15, rate=3.5, pid=123),
            _frame(95.0, phase="done"),
        ),
        100.0,
        10.0,
    )
    assert status.state == "done"
    assert status.cells_done == 7 and status.cells_total == 15
    assert status.rate == 3.5 and status.pid == 123
    # shard/generation reflect the *newest* frame: the worker holds none.
    assert status.shard is None and status.generation is None


def test_fleet_snapshot_of_completed_fabric(tmp_path):
    schemas = _universe()
    result = run_fabric_worker(tmp_path, schemas, shard_cells=4,
                               owner="w1", ttl=5.0)
    snap = fleet_snapshot(tmp_path)
    assert snap.complete
    assert snap.shards_done == snap.shards_total > 0
    assert snap.cells_done == snap.cells_total == result.cells_scanned
    assert snap.eta == 0.0
    assert snap.stolen == 0 and snap.journal_errors == 0
    (worker,) = snap.workers
    assert worker.owner == "w1" and worker.state == "done"
    assert worker.cells_done == result.cells_scanned
    # The JSON rendering is actually JSON-serialisable.
    payload = json.loads(json.dumps(snap.as_dict()))
    assert payload["complete"] is True
    assert [w["owner"] for w in payload["workers"]] == ["w1"]


def test_fleet_snapshot_requires_a_plan(tmp_path):
    with pytest.raises(FabricError):
        fleet_snapshot(tmp_path)


def test_fleet_snapshot_counts_steals_from_telemetry(tmp_path):
    schemas = _universe()
    run_fabric_worker(tmp_path, schemas, shard_cells=4, owner="w1", ttl=5.0)
    with TelemetryWriter(frame_path(tmp_path, "thief"), "thief") as writer:
        writer.frame("start")
        writer.lease("steal", shard=0, generation=1)
    snap = fleet_snapshot(tmp_path)
    assert snap.stolen == 1
    assert sorted(w.owner for w in snap.workers) == ["thief", "w1"]


def test_fleet_snapshot_eta_uses_live_rate_over_remaining_cells(tmp_path):
    schemas = _universe()
    run_fabric_worker(tmp_path, schemas, shard_cells=4, owner="w1", ttl=5.0)
    # Reopen shard 0: delete its marker and journals, as if mid-flight.
    lost = len(fabric_journal.segment_paths(tmp_path, 0))
    assert lost
    fabric_journal.done_marker_path(tmp_path, 0).unlink()
    for segment in fabric_journal.segment_paths(tmp_path, 0):
        segment.unlink()
    clock = {"now": 998.0}
    with TelemetryWriter(frame_path(tmp_path, "w2"), "w2",
                         clock=lambda: clock["now"]) as writer:
        writer.frame("scan", cells_done=1, cells_total=15)
        clock["now"] = 1000.0
        writer.frame("scan", cells_done=3)  # second frame carries a rate
    snap = fleet_snapshot(tmp_path, clock=lambda: clock["now"])
    assert not snap.complete
    remaining = snap.cells_total - snap.cells_done
    assert remaining > 0
    w2 = next(w for w in snap.workers if w.owner == "w2")
    assert w2.live and w2.rate and snap.rate == w2.rate
    assert snap.eta == pytest.approx(remaining / snap.rate)


def test_fleet_snapshot_tolerates_torn_streams_and_garbage_journals(tmp_path):
    schemas = _universe()
    run_fabric_worker(tmp_path, schemas, shard_cells=4, owner="w1", ttl=5.0)
    # Tear the telemetry stream the way a chaos kill does.
    with frame_path(tmp_path, "w1").open("a") as handle:
        handle.write('{"v": 2, "type": "telem')
    # Reopen shard 0 and leave conflicting segments behind it.
    plan_cell = None
    from repro.scanfabric import load_plan

    plan = load_plan(tmp_path)
    plan_cell = plan.shards[0][0]
    fabric_journal.done_marker_path(tmp_path, 0).unlink()
    header = {"v": 1, "kind": "header", "fingerprint": plan.scan_fingerprint}
    for owner, verdict in (("evil-a", True), ("evil-b", False)):
        forged = fabric_journal.segment_path(tmp_path, 0, 99, owner)
        cell = {"v": 1, "kind": "cell", "key": list(plan_cell),
                "data": {"isomorphic": verdict}}
        forged.write_text(
            json.dumps(header) + "\n" + json.dumps(cell) + "\n"
        )
    snap = fleet_snapshot(tmp_path)  # must not raise
    assert snap.journal_errors == 1
    assert not snap.complete
    (worker,) = snap.workers
    assert worker.torn == 1


def test_render_fleet_headline_and_table(tmp_path):
    schemas = _universe()
    run_fabric_worker(tmp_path, schemas, shard_cells=4, owner="w1", ttl=5.0)
    text = render_fleet(fleet_snapshot(tmp_path))
    assert "COMPLETE" in text
    assert "WORKER" in text and "STATE" in text and "TORN" in text
    assert "w1" in text


def test_default_ttl_when_no_leases_or_frames_carry_one(tmp_path):
    schemas = _universe()
    run_fabric_worker(tmp_path, schemas, shard_cells=4, owner="w1", ttl=5.0)
    # Wipe the lease files and rewrite a stream without ttl fields: the
    # snapshot must fall back to DEFAULT_TTL rather than crash.
    for index in range(len(fabric_journal.segment_paths(tmp_path, 0)) + 64):
        path = fabric_journal.lease_path(tmp_path, index)
        if path.exists():
            path.unlink()
    frame_path(tmp_path, "w1").write_text(
        json.dumps(_frame(1000.0, phase="done")) + "\n"
    )
    snap = fleet_snapshot(tmp_path, clock=lambda: 1000.0 + DEFAULT_TTL / 2)
    (worker,) = snap.workers
    assert worker.state == "done"
