"""Unit tests for the metrics registry (:mod:`repro.obs.metrics`)."""

import pytest

from repro.obs.metrics import (
    MetricsRegistry,
    cache_totals,
    diff,
    registry,
    sum_matching,
)


def test_counter_created_once_and_shared():
    reg = MetricsRegistry()
    a = reg.counter("x.hits")
    b = reg.counter("x.hits")
    assert a is b
    a.inc()
    b.inc(2)
    assert a.value == 3


def test_gauge_set_and_excluded_from_snapshot():
    reg = MetricsRegistry()
    reg.gauge("depth").set(7)
    reg.counter("work").inc(1)
    assert reg.snapshot() == {"work": 1}
    assert reg.gauges() == {"depth": 7}
    assert reg.as_dict() == {"work": 1, "depth": 7}


def test_histogram_summary_and_counter_parts():
    reg = MetricsRegistry()
    hist = reg.histogram("rounds")
    for value in (1, 3, 2):
        hist.observe(value)
    assert hist.count == 3
    assert hist.total == 6
    assert hist.mean == 2.0
    assert hist.min == 1 and hist.max == 3
    # The additive parts are genuine counters, visible in snapshots.
    snap = reg.snapshot()
    assert snap["rounds.count"] == 3
    assert snap["rounds.total"] == 6


def test_histogram_empty_mean_is_zero():
    assert MetricsRegistry().histogram("empty").mean == 0.0


def test_snapshot_diff_merge_round_trip():
    reg = MetricsRegistry()
    reg.counter("a").inc(5)
    before = reg.snapshot()
    reg.counter("a").inc(2)
    reg.counter("b").inc(1)
    delta = diff(before, reg.snapshot())
    assert delta == {"a": 2, "b": 1}
    other = MetricsRegistry()
    other.counter("a").inc(100)
    other.merge(delta)
    assert other.counter("a").value == 102
    assert other.counter("b").value == 1


def test_diff_drops_zero_entries():
    assert diff({"a": 5, "b": 1}, {"a": 5, "b": 2}) == {"b": 1}


def test_reset_zeroes_everything():
    reg = MetricsRegistry()
    reg.counter("c").inc(3)
    reg.gauge("g").set(9)
    hist = reg.histogram("h")
    hist.observe(4)
    reg.reset()
    assert reg.counter("c").value == 0
    assert reg.gauge("g").value == 0
    assert hist.min is None and hist.max is None
    assert hist.count == 0


def test_sum_matching_and_cache_totals():
    snap = {
        "cache.a.hits": 3,
        "cache.a.misses": 1,
        "cache.b.hits": 4,
        "cache.b.evictions": 2,
        "index.rows_probed": 99,
    }
    assert sum_matching(snap, "cache.", ".hits") == 7
    assert sum_matching(snap, "index.") == 99
    assert cache_totals(snap) == (7, 1, 2)


def test_default_registry_is_process_wide():
    assert registry() is registry()


def test_memo_stats_live_in_default_registry():
    """Satellite: memo cache stats have a single source of truth."""
    from repro.utils import memo

    cache = memo.Memo("obs-integration-test")
    start = registry().counter("cache.obs-integration-test.hits").value
    cache.get_or_compute("k", lambda: 1)
    cache.get_or_compute("k", lambda: 1)
    assert registry().counter("cache.obs-integration-test.hits").value == start + 1
    assert cache.stats.hits == start + 1


def test_index_and_match_counters_live_in_default_registry():
    from repro.cq import homomorphism, indexing

    assert indexing.counters.rows_probed == registry().counter("index.rows_probed").value
    assert homomorphism.counters.backtracks == registry().counter("hom.backtracks").value
