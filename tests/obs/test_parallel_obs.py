"""Parallel counter/trace aggregation (ISSUE satellite).

Two properties pin down the worker → parent observability channel:

1. **Parity** — the deterministic search metrics of an ``n_workers=4``
   scan equal the sequential scan's.  (Cache hit/miss counters are *not*
   compared: workers inherit per-process forked caches, so the split of
   hits vs misses legitimately differs; the scan verdicts and the
   pair-grid counters may not.)
2. **Pickle round-trip** — the worker-delta payloads (`_ChunkResult`,
   `_CellResult`, `SpanRecord`) are primitives-only and survive pickle
   unchanged, which is what lets ProcessPoolExecutor ship them.
"""

import multiprocessing
import pickle

import pytest

from repro.core.search import (
    _CellResult,
    _ChunkResult,
    search_dominance,
    theorem13_scan,
)
from repro.obs import metrics, tracing
from repro.obs.tracing import SpanRecord
from repro.relational import parse_schema
from repro.utils import memo

EMP = "emp(ss*: SSN, name: Name)"
PERSON = "person(id*: SSN, nm: Name)"
WIDE = "person(id*: SSN, nm: Name, extra: Name)"

DETERMINISTIC = (
    "search.alpha_candidates",
    "search.beta_candidates",
    "search.pairs_tried",
    "search.gadget_rejected",
    "search.exact_checks",
    "search.witnesses",
)


def _schemas():
    return [parse_schema(text)[0] for text in (EMP, PERSON, WIDE)]


# Observability must survive both start methods: ``fork`` workers inherit
# the parent's toggles and warm caches, ``spawn`` workers start from a
# blank interpreter and rely entirely on ``_WorkerEnv`` re-applying them.
START_METHODS = pytest.mark.parametrize(
    "mp_context",
    [None, multiprocessing.get_context("spawn")],
    ids=["fork", "spawn"],
)


def _scan_delta(n_workers, mp_context=None):
    memo.clear_all()
    before = metrics.registry().snapshot()
    rows = theorem13_scan(
        _schemas(), max_atoms=1, n_workers=n_workers, mp_context=mp_context
    )
    delta = metrics.diff(before, metrics.registry().snapshot())
    return rows, delta


@START_METHODS
def test_parallel_scan_metrics_match_sequential(mp_context):
    sequential_rows, sequential = _scan_delta(1)
    parallel_rows, parallel = _scan_delta(4, mp_context)
    assert parallel_rows == sequential_rows
    for name in DETERMINISTIC:
        assert parallel.get(name, 0) == sequential.get(name, 0), name
    # The parallel run did real work in workers and shipped it home:
    assert sum(parallel.get(name, 0) for name in DETERMINISTIC) > 0


@START_METHODS
def test_parallel_search_stats_cover_worker_processes(mp_context):
    memo.clear_all()
    s1 = parse_schema(EMP)[0]
    s2 = parse_schema(PERSON)[0]
    sequential = search_dominance(s1, s2, max_atoms=1, n_workers=1)
    memo.clear_all()
    parallel = search_dominance(
        s1, s2, max_atoms=1, n_workers=2, mp_context=mp_context
    )
    assert parallel.found == sequential.found
    assert parallel.stats.pairs_tried == sequential.stats.pairs_tried
    assert parallel.stats.exact_checks == sequential.stats.exact_checks
    # Worker cache/match work is merged into the parent's stats: a cold
    # parallel run must report the misses its workers paid.
    assert parallel.stats.cache_misses > 0


@START_METHODS
def test_parallel_trace_contains_worker_spans(mp_context):
    previous = tracing.set_enabled(True)
    tracing.start_trace()
    try:
        theorem13_scan(_schemas(), max_atoms=1, n_workers=2, mp_context=mp_context)
        records = tracing.records()
    finally:
        tracing.set_enabled(previous)
        tracing.start_trace()
    procs = {record.proc for record in records}
    assert "" in procs  # the parent's own spans
    worker_procs = {p for p in procs if p.startswith("w")}
    assert worker_procs, f"no worker spans absorbed (procs: {sorted(procs)})"
    # Worker span ids carry their process prefix and stay distinct.
    worker_ids = [r.span_id for r in records if r.proc in worker_procs]
    assert all(":" in span_id for span_id in worker_ids)
    assert len(set(worker_ids)) == len(worker_ids)


def test_chunk_result_pickle_round_trip():
    result = _ChunkResult(
        witness_index=17,
        pairs_tried=40,
        gadget_rejected=3,
        exact_checks=5,
        metrics_delta={"cache.evaluate.misses": 12, "hom.backtracks": 7.0},
        spans=(
            SpanRecord("w0_1:s0001", None, "search.scan", 0.0, 0.5, "w0_1"),
            SpanRecord("w0_1:s0002", "w0_1:s0001", "hom.match", 0.1, 0.2, "w0_1"),
        ),
    )
    clone = pickle.loads(pickle.dumps(result))
    assert clone == result
    assert isinstance(clone.spans[0], SpanRecord)
    assert clone.spans[1].parent_id == "w0_1:s0001"


def test_cell_result_pickle_round_trip():
    result = _CellResult(
        i=1,
        j=2,
        isomorphic=False,
        found=True,
        metrics_delta={"search.pairs_tried": 9},
        spans=(SpanRecord("w1_2:s0001", None, "search.dominance", 0.0, 0.1, "w1_2"),),
    )
    clone = pickle.loads(pickle.dumps(result))
    assert clone == result
    tracing.tracer().absorb(clone.spans)  # absorbable after the round trip
    drained = tracing.drain()
    assert drained[-1].proc == "w1_2"


def test_merged_delta_equals_worker_sum():
    # The parent-side aggregation is plain dict merging: synthesising two
    # worker deltas and merging them must add, not overwrite.
    reg = metrics.MetricsRegistry()
    reg.merge({"search.pairs_tried": 3, "cache.evaluate.misses": 2})
    reg.merge({"search.pairs_tried": 4, "index.rows_probed": 10})
    snap = reg.snapshot()
    assert snap["search.pairs_tried"] == 7
    assert snap["cache.evaluate.misses"] == 2
    assert snap["index.rows_probed"] == 10
