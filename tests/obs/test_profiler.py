"""Unit tests for the sampling profiler (:mod:`repro.obs.profiler`)."""

import pytest

from repro.obs import profiler, tracing
from repro.obs.profiler import (
    IDLE,
    SamplingProfiler,
    absorb_samples,
    attach_samples,
    drain_samples,
    profiling_hz,
    samples_by_name,
    start_profiling,
    stop_profiling,
)
from repro.obs.tracing import SpanRecord


@pytest.fixture(autouse=True)
def clean_state():
    tracing.set_enabled(True)
    tracing.start_trace()
    profiler.drain_samples()
    yield
    profiler.stop_profiling()
    profiler.drain_samples()
    tracing.set_enabled(False)


def test_rejects_non_positive_rate():
    with pytest.raises(ValueError):
        SamplingProfiler(hz=0)
    with pytest.raises(ValueError):
        SamplingProfiler(hz=-5)


def test_sample_once_attributes_to_innermost_open_span():
    sampler = SamplingProfiler(hz=1000)
    with tracing.span("outer"):
        with tracing.span("inner"):
            sampler.sample_once()
    table = sampler.stop()
    assert sampler.ticks == 1
    # Only the innermost span is charged (self attribution).
    assert list(table.values()) == [1]
    (span_id,) = table
    assert span_id != IDLE


def test_sample_once_idle_without_open_spans():
    sampler = SamplingProfiler(hz=1000)
    sampler.sample_once()
    assert sampler.stop() == {IDLE: 1}


def test_thread_samples_a_long_span():
    sampler = SamplingProfiler(hz=500).start()
    assert sampler.running
    import time

    with tracing.span("busy"):
        time.sleep(0.05)
    table = sampler.stop()
    assert not sampler.running
    assert sampler.ticks >= 1
    assert sum(table.values()) == sampler.ticks


def test_module_level_lifecycle_and_hz():
    assert profiling_hz() is None
    start_profiling(250)
    assert profiling_hz() == 250.0
    collected = stop_profiling()
    assert profiling_hz() is None
    # Stopped samples joined the global table.
    total = sum(drain_samples().values())
    assert total == sum(collected.values())
    assert stop_profiling() == {}  # idempotent


def test_absorb_adds_like_metric_deltas():
    absorb_samples({"s0001": 2, "w0:s0001": 3})
    absorb_samples({"s0001": 1, "zero": 0})
    table = drain_samples()
    assert table == {"s0001": 3, "w0:s0001": 3}
    assert drain_samples() == {}


def test_attach_samples_preserves_stray_ticks_as_idle():
    records = [SpanRecord("s0001", None, "root", 0.0, 1.0, "")]
    attached = attach_samples(records, {"s0001": 4, "gone": 2, IDLE: 1})
    assert attached == {"s0001": 4, IDLE: 3}
    # Totals reconcile: nothing is silently dropped.
    assert sum(attached.values()) == 7


def test_samples_by_name_aggregates_phases():
    records = [
        SpanRecord("s0001", None, "scan", 0.0, 1.0, ""),
        SpanRecord("w0:s0001", None, "scan", 0.0, 1.0, "w0"),
    ]
    by_name = samples_by_name(records, {"s0001": 2, "w0:s0001": 3, "x": 1})
    assert by_name == {"scan": 5, IDLE: 1}
