"""Unit tests for the live progress line (:mod:`repro.obs.progress`)."""

import io

from repro.obs.progress import MAX_WORKER_FIELDS, ProgressReporter


class _Clock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def _reporter(min_interval=0.0):
    clock = _Clock()
    stream = io.StringIO()
    reporter = ProgressReporter(
        label="scan", stream=stream, min_interval=min_interval, clock=clock
    )
    return reporter, clock, stream


def test_update_shape_matches_on_progress_callback():
    reporter, clock, _ = _reporter()
    # (done, total, proc) — the exact signature the scan drivers call.
    reporter.update(0, 10, "")
    clock.now = 1.0
    reporter.update(4, 10, "w0")
    assert reporter.done == 4 and reporter.total == 10
    assert reporter.rate() == 4.0
    assert reporter.eta() == 1.5


def test_first_report_is_resume_baseline():
    reporter, clock, _ = _reporter()
    # A resumed scan reports the checkpoint-replayed count up front.
    reporter.update(6, 10, "")
    clock.now = 2.0
    reporter.update(8, 10, "")
    # Rate covers only this run's 2 fresh units, not the 6 replayed ones.
    assert reporter.rate() == 1.0
    assert "resumed 6" in reporter.render()


def test_fully_resumed_scan_renders_without_rate():
    reporter, _, stream = _reporter()
    reporter.update(3, 3, "")
    reporter.finish()
    line = stream.getvalue()
    assert "scan 3/3 100.0%" in line
    assert "resumed 3" in line
    assert "/s" not in line  # no fresh units → no rate claim


def test_rate_limiting_skips_intermediate_renders():
    reporter, clock, stream = _reporter(min_interval=10.0)
    reporter.update(0, 5, "")
    clock.now = 0.1
    reporter.update(1, 5, "")  # suppressed: within min_interval
    assert stream.getvalue().count("\r") == 1
    clock.now = 0.2
    reporter.update(5, 5, "")  # final update always renders
    assert stream.getvalue().count("\r") == 2
    assert reporter.updates == 3


def test_worker_census_rendered_and_elided():
    reporter, _, _ = _reporter()
    reporter.update(0, 100, "")
    for i in range(MAX_WORKER_FIELDS):
        reporter.update(i + 1, 100, f"w{i}")
    line = reporter.render()
    assert "w0:1" in line and f"w{MAX_WORKER_FIELDS - 1}:1" in line
    # One label past the limit elides the census entirely.
    reporter.update(MAX_WORKER_FIELDS + 1, 100, "wX")
    assert "w0:1" not in reporter.render()


def test_shorter_line_overwrites_longer_one():
    reporter, _, stream = _reporter()
    reporter._emit("a long status line")
    reporter._emit("short")
    last = stream.getvalue().rsplit("\r", 1)[1]
    # Padding spaces blank out the previous, longer line.
    assert last == "short" + " " * (len("a long status line") - len("short"))


def test_finish_terminates_the_line():
    reporter, _, stream = _reporter()
    reporter.update(1, 1, "")
    reporter.finish()
    assert stream.getvalue().endswith("\n")


def test_finish_without_updates_is_silent():
    reporter, _, stream = _reporter()
    reporter.finish()
    assert stream.getvalue() == ""


def test_pruned_units_shrink_eta_but_not_rate():
    reporter, clock, _ = _reporter()
    reporter.update(0, 20, "")
    clock.now = 1.0
    reporter.update(4, 20, "")
    assert reporter.rate() == 4.0
    assert reporter.eta() == 4.0  # 16 remaining at 4/s
    # Ten cells resolved by symmetry/carry: instant, so the rate holds
    # but the remaining-work term collapses (the PR-7 overestimate bug).
    reporter.note_pruned(10)
    assert reporter.rate() == 4.0
    assert reporter.eta() == 1.5  # only 6 genuinely scannable cells left


def test_pruned_units_advance_percent_and_render():
    reporter, clock, _ = _reporter()
    reporter.update(0, 10, "")
    reporter.note_pruned(5)
    clock.now = 1.0
    reporter.update(2, 10, "")
    line = reporter.render()
    assert "70.0%" in line  # (2 done + 5 pruned) / 10
    assert "pruned 5" in line


def test_pruned_percent_is_capped_at_100():
    reporter, _, _ = _reporter()
    reporter.update(0, 4, "")
    reporter.note_pruned(10)
    assert "100.0%" in reporter.render()


def test_eta_line_vanishes_once_pruned_plus_done_cover_total():
    reporter, clock, _ = _reporter()
    reporter.update(0, 10, "")
    clock.now = 1.0
    reporter.update(5, 10, "")
    assert "eta" in reporter.render()
    reporter.note_pruned(5)
    assert "eta" not in reporter.render()


def test_live_block_appends_when_not_a_tty():
    from repro.obs.progress import LiveBlock

    stream = io.StringIO()  # no isatty → not a terminal
    block = LiveBlock(stream=stream)
    block.emit("a\nb")
    block.emit("c\nd")
    # Both frames stay in the scrollback, no ANSI control codes.
    assert stream.getvalue() == "a\nb\nc\nd\n"
    assert "\x1b" not in stream.getvalue()


def test_live_block_overwrites_on_a_tty():
    from repro.obs.progress import LiveBlock

    class Tty(io.StringIO):
        def isatty(self):
            return True

    stream = Tty()
    block = LiveBlock(stream=stream)
    block.emit("one\ntwo\nthree")
    block.emit("four")
    # The second frame climbs over the 3-line block and erases below.
    assert "\x1b[3F\x1b[J" in stream.getvalue()
    block.finish()
    block.emit("five")
    # After finish() the next emit starts a fresh block: no cursor-up.
    assert stream.getvalue().endswith("four\nfive\n")
    assert stream.getvalue().count("\x1b[J") == 1
