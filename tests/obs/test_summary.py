"""Unit tests for the trace fold/summary (:mod:`repro.obs.summary`)."""

import pytest

from repro.obs.summary import PhaseRow, fold, render
from repro.obs.tracing import SpanRecord


def _record(span_id, parent, name, start, end, proc=""):
    return SpanRecord(span_id, parent, name, start, end, proc)


def test_fold_self_and_cumulative():
    # root [0, 10] with children a [1, 4] and b [5, 9]; a has child c [2, 3].
    records = [
        _record("s0004", "s0001", "b", 5.0, 9.0),
        _record("s0003", "s0002", "c", 2.0, 3.0),
        _record("s0002", "s0001", "a", 1.0, 4.0),
        _record("s0001", None, "root", 0.0, 10.0),
    ]
    summary = fold(records)
    by_name = {row.name: row for row in summary.rows}
    assert by_name["root"] == PhaseRow("root", 1, pytest.approx(3.0), pytest.approx(10.0))
    assert by_name["a"] == PhaseRow("a", 1, pytest.approx(2.0), pytest.approx(3.0))
    assert by_name["b"].self_s == pytest.approx(4.0)
    assert by_name["c"].self_s == pytest.approx(1.0)
    # Self times tile the trace: they sum to the root duration.
    assert summary.total_self_s == pytest.approx(10.0)
    assert summary.wall_s == pytest.approx(10.0)
    assert summary.processes == 1


def test_fold_aggregates_repeated_phase_names():
    records = [
        _record("s0002", "s0001", "step", 0.0, 1.0),
        _record("s0003", "s0001", "step", 1.0, 3.0),
        _record("s0001", None, "root", 0.0, 4.0),
    ]
    summary = fold(records)
    step = next(row for row in summary.rows if row.name == "step")
    assert step.calls == 2
    assert step.cumulative_s == pytest.approx(3.0)
    assert step.self_s == pytest.approx(3.0)


def test_fold_clamps_negative_self_time():
    # Merged clocks can make children appear to exceed the parent.
    records = [
        _record("s0002", "s0001", "child", 0.0, 5.0),
        _record("s0001", None, "root", 0.0, 1.0),
    ]
    summary = fold(records)
    root = next(row for row in summary.rows if row.name == "root")
    assert root.self_s == 0.0


def test_fold_rows_sorted_by_descending_self_time():
    records = [
        _record("s0001", None, "small", 0.0, 1.0),
        _record("s0002", None, "large", 0.0, 5.0),
    ]
    assert [row.name for row in fold(records).rows] == ["large", "small"]


def test_fold_multi_process_totals():
    records = [
        _record("s0001", None, "root", 0.0, 2.0, proc=""),
        _record("w0:s0001", None, "scan", 0.0, 2.0, proc="w0"),
        _record("w1:s0001", None, "scan", 0.0, 1.0, proc="w1"),
    ]
    summary = fold(records)
    assert summary.processes == 3
    # CPU seconds across processes exceed the longest root's wall time.
    assert summary.total_self_s == pytest.approx(5.0)
    assert summary.wall_s == pytest.approx(2.0)


def test_fold_empty_trace():
    summary = fold([])
    assert summary.rows == []
    assert summary.total_self_s == 0.0
    assert summary.wall_s == 0.0


def test_render_single_process():
    records = [
        _record("s0002", "s0001", "child", 1.0, 3.0),
        _record("s0001", None, "root", 0.0, 4.0),
    ]
    text = render(records, title="timings")
    assert text.startswith("timings\n")
    assert "phase" in text and "self s" in text and "cum s" in text
    assert "child" in text and "root" in text
    assert "TOTAL" in text and "(cpu)" not in text
    assert "100.0%" in text


def test_render_multi_process_labels_cpu_total():
    records = [
        _record("s0001", None, "root", 0.0, 1.0, proc=""),
        _record("w0:s0001", None, "scan", 0.0, 1.0, proc="w0"),
    ]
    text = render(records)
    assert "TOTAL (cpu)" in text
    assert "across 2 processes" in text


def test_fold_of_incident_interleaved_trace():
    # A full event stream — spans interleaved with fault/retry/timeout
    # incidents — folds identically to the bare span records: incidents
    # pass through spans_from_events untouched and fold ignores them.
    from repro.obs.events import (
        fault_event,
        retry_event,
        spans_from_events,
        timeout_event,
        trace_events,
    )

    records = [
        _record("s0002", "s0001", "pair", 1.0, 3.0),
        _record("s0001", None, "scan", 0.0, 4.0),
    ]
    incidents = [
        fault_event("scan.cell", "kill", key="0,1", attempt=0),
        retry_event(1, 2, "crash", delay=0.01),
        timeout_event("pair", i=0, j=1, seconds=0.5),
    ]
    stream = trace_events(records, counters={"x": 1}, incidents=incidents)
    summary = fold(spans_from_events(stream))
    assert summary == fold(records)
    assert summary.wall_s == pytest.approx(4.0)
    by_name = {row.name: row for row in summary.rows}
    assert by_name["scan"].self_s == pytest.approx(2.0)
    assert by_name["pair"].self_s == pytest.approx(2.0)


def test_fold_of_stitched_resumed_scan_trace():
    # A resumed scan: segment 1 ends mid-run (timeout incident recorded),
    # segment 2 restarts span ids at s0001.  Stitching the journals and
    # folding must aggregate both segments' phases instead of crossing
    # segment boundaries or dropping the repeated ids.
    from repro.obs.events import spans_from_events, timeout_event, trace_events

    segment1 = trace_events(
        [
            _record("s0002", "s0001", "pair", 0.5, 1.5),
            _record("s0001", None, "scan", 0.0, 2.0),
        ],
        incidents=[timeout_event("scan", seconds=2.0)],
    )
    segment2 = trace_events(
        [
            _record("s0002", "s0001", "pair", 0.25, 0.75),
            _record("s0001", None, "scan", 0.0, 1.0),
        ],
    )
    summary = fold(spans_from_events(segment1 + segment2))
    scan = next(row for row in summary.rows if row.name == "scan")
    pair = next(row for row in summary.rows if row.name == "pair")
    assert scan.calls == 2 and pair.calls == 2
    assert pair.cumulative_s == pytest.approx(1.5)
    assert scan.self_s == pytest.approx(1.5)
    # Self times still tile: each segment's root covers its own children.
    assert summary.total_self_s == pytest.approx(3.0)
