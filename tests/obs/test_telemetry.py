"""Unit tests for per-worker telemetry streams (:mod:`repro.obs.telemetry`)."""

import json

import pytest

from repro.errors import InjectedFault
from repro.obs import events, metrics
from repro.obs.telemetry import (
    TelemetryWriter,
    frame_path,
    read_fleet_telemetry,
    read_telemetry,
    trace_path,
    worker_trace_paths,
)
from repro.resilience import faults, install, rule


class FakeClock:
    def __init__(self, now=100.0):
        self.now = now

    def __call__(self):
        return self.now


def test_frames_carry_seq_phase_and_auto_rate(tmp_path):
    clock = FakeClock()
    with TelemetryWriter(tmp_path / "w1.telemetry.jsonl", "w1",
                         ttl=8.0, clock=clock) as writer:
        first = writer.frame("start", cells_done=0, cells_total=10)
        clock.now += 2.0
        second = writer.frame("scan", shard=3, generation=1,
                              cells_done=4, cells_total=10)
    assert first["seq"] == 0 and first["phase"] == "start"
    assert "rate" not in first  # no progression yet
    assert second["seq"] == 1
    assert second["shard"] == 3 and second["generation"] == 1
    assert second["rate"] == pytest.approx(2.0)  # 4 cells over 2 seconds
    assert second["ttl"] == 8.0
    assert second["uptime"] == pytest.approx(2.0)


def test_frames_carry_metrics_deltas_not_totals(tmp_path):
    counter = metrics.registry().counter("telemetry.test.widget")
    clock = FakeClock()
    with TelemetryWriter(tmp_path / "w1.telemetry.jsonl", "w1",
                         clock=clock) as writer:
        counter.inc(5)
        first = writer.frame("scan")
        clock.now += 1.0
        counter.inc(2)
        second = writer.frame("scan")
        clock.now += 1.0
        third = writer.frame("scan")
    assert first["metrics"]["telemetry.test.widget"] == 5
    assert second["metrics"]["telemetry.test.widget"] == 2
    # No change since the previous frame: the key is omitted entirely.
    assert "telemetry.test.widget" not in third.get("metrics", {})


def test_rate_limit_drops_frames_unless_forced(tmp_path):
    clock = FakeClock()
    with TelemetryWriter(tmp_path / "w1.telemetry.jsonl", "w1",
                         clock=clock, min_interval=5.0) as writer:
        assert writer.frame("scan") is not None
        clock.now += 1.0
        assert writer.frame("scan") is None  # inside the interval
        assert writer.frame("scan", force=True) is not None
        clock.now += 6.0
        assert writer.frame("scan") is not None
    log = read_telemetry(tmp_path / "w1.telemetry.jsonl")
    assert len(log.frames) == 3 and log.torn == 0


def test_lease_events_are_never_rate_limited(tmp_path):
    clock = FakeClock()
    with TelemetryWriter(tmp_path / "w1.telemetry.jsonl", "w1",
                         clock=clock, min_interval=60.0) as writer:
        writer.frame("start")
        writer.lease("acquire", shard=2, generation=0)
        writer.lease("steal", shard=5, generation=1, t=0.25)
    log = read_telemetry(tmp_path / "w1.telemetry.jsonl")
    assert [e["action"] for e in log.leases] == ["acquire", "steal"]
    assert log.leases[1]["t"] == 0.25


def test_read_telemetry_counts_torn_lines_instead_of_raising(tmp_path):
    path = tmp_path / "w1.telemetry.jsonl"
    with TelemetryWriter(path, "w1", clock=FakeClock()) as writer:
        writer.frame("scan", cells_done=3)
    with path.open("a") as handle:
        handle.write('{"v": 2, "type": "telemetry", "owner": "w1", "se')
    log = read_telemetry(path)
    assert log.owner == "w1"
    assert len(log.frames) == 1 and log.torn == 1


def test_read_telemetry_counts_schema_invalid_lines_as_torn(tmp_path):
    path = tmp_path / "w1.telemetry.jsonl"
    path.write_text(
        json.dumps({"v": 2, "type": "telemetry", "owner": "w1"}) + "\n"
    )  # missing required seq/wall/phase
    log = read_telemetry(path)
    assert log.frames == [] and log.torn == 1
    # The owner falls back to the filename stem.
    assert log.owner == "w1"


def test_read_telemetry_missing_file_is_empty_not_an_error(tmp_path):
    log = read_telemetry(tmp_path / "nope.telemetry.jsonl")
    assert log.frames == [] and log.leases == [] and log.torn == 0


def test_fleet_readers_key_by_owner_and_trace_stem(tmp_path):
    for owner in ("w-a", "w-b"):
        with TelemetryWriter(frame_path(tmp_path, owner), owner,
                             clock=FakeClock()) as writer:
            writer.frame("start")
        trace_path(tmp_path, owner).write_text("")
    logs = read_fleet_telemetry(tmp_path)
    assert sorted(logs) == ["w-a", "w-b"]
    traces = worker_trace_paths(tmp_path)
    assert sorted(traces) == ["w-a", "w-b"]
    assert traces["w-a"].name == "w-a.trace.jsonl"


def test_unsafe_owner_names_are_neutered_in_paths(tmp_path):
    path = frame_path(tmp_path, "host/1:evil")
    assert path.name == "host_1_evil.telemetry.jsonl"


def test_telemetry_frame_fault_site_fires_per_owner_and_seq(tmp_path):
    install([
        rule("telemetry.frame", "raise", keys=["w1"], attempts=[1]),
    ])
    try:
        clock = FakeClock()
        with TelemetryWriter(tmp_path / "w1.telemetry.jsonl", "w1",
                             clock=clock) as writer:
            writer.frame("start")  # seq 0: spared
            with pytest.raises(InjectedFault):
                writer.frame("scan")  # seq 1: the armed attempt
        with TelemetryWriter(tmp_path / "w2.telemetry.jsonl", "w2",
                             clock=clock) as writer:
            writer.frame("start")
            writer.frame("scan")  # different owner: spared
    finally:
        faults.clear()
        events.drain_incidents()  # the fired fault recorded an incident
    # The torn write never happened; the stream holds only the survivor.
    log = read_telemetry(tmp_path / "w1.telemetry.jsonl")
    assert len(log.frames) == 1
