"""Unit tests for hierarchical span tracing (:mod:`repro.obs.tracing`)."""

import pytest

from repro.obs import tracing
from repro.obs.tracing import SpanRecord, Tracer, span, traced


@pytest.fixture
def enabled_tracer():
    """Tracing on with a fresh global tracer; restored afterwards."""
    previous = tracing.set_enabled(True)
    tracing.start_trace()
    yield tracing.tracer()
    tracing.set_enabled(previous)
    tracing.start_trace()


def test_disabled_span_is_shared_noop():
    assert not tracing.tracing_enabled()
    first = span("anything")
    second = span("anything.else")
    assert first is second  # the shared _NULL_SPAN, no allocation
    with first:
        pass
    assert tracing.records() == []


def test_span_nesting_records_parenthood(enabled_tracer):
    with span("outer"):
        with span("inner"):
            pass
        with span("inner"):
            pass
    records = tracing.records()
    assert [r.name for r in records] == ["inner", "inner", "outer"]
    outer = records[-1]
    assert outer.parent_id is None
    for inner in records[:2]:
        assert inner.parent_id == outer.span_id
        assert outer.start <= inner.start <= inner.end <= outer.end
        assert inner.duration >= 0.0


def test_span_ids_are_deterministic(enabled_tracer):
    with span("a"):
        with span("b"):
            pass
    ids = sorted(r.span_id for r in tracing.records())
    assert ids == ["s0001", "s0002"]
    # Restarting the trace restarts the counter: same workload, same ids.
    tracing.start_trace()
    with span("a"):
        with span("b"):
            pass
    assert sorted(r.span_id for r in tracing.records()) == ["s0001", "s0002"]


def test_worker_proc_prefixes_ids():
    worker = Tracer(proc="w3")
    worker.push("work")
    record = worker.pop()
    assert record.span_id == "w3:s0001"
    assert record.proc == "w3"


def test_current_span_id_tracks_stack(enabled_tracer):
    assert tracing.current_span_id() is None
    with span("outer"):
        outer_id = tracing.current_span_id()
        assert outer_id == "s0001"
        with span("inner"):
            assert tracing.current_span_id() != outer_id
        assert tracing.current_span_id() == outer_id
    assert tracing.current_span_id() is None


def test_traced_decorator(enabled_tracer):
    @traced("phase.work")
    def work(x):
        return x * 2

    assert work(21) == 42
    records = tracing.records()
    assert len(records) == 1
    assert records[0].name == "phase.work"
    assert work.__name__ == "work"  # functools.wraps preserved


def test_traced_decorator_defaults_to_qualname(enabled_tracer):
    @traced()
    def helper():
        return 1

    helper()
    assert tracing.records()[0].name.endswith("helper")


def test_traced_is_passthrough_when_disabled():
    @traced("never.recorded")
    def work():
        return "ok"

    assert work() == "ok"
    assert tracing.records() == []


def test_span_records_on_exception(enabled_tracer):
    with pytest.raises(ValueError):
        with span("failing"):
            raise ValueError("boom")
    records = tracing.records()
    assert [r.name for r in records] == ["failing"]
    # The stack is clean again: the next span is a root.
    with span("after"):
        pass
    assert tracing.records()[-1].parent_id is None


def test_drain_and_absorb(enabled_tracer):
    with span("local"):
        pass
    drained = tracing.drain()
    assert [r.name for r in drained] == ["local"]
    assert tracing.records() == []
    foreign = [SpanRecord("w0:s0001", None, "remote", 0.0, 0.5, "w0")]
    tracing.absorb(foreign)
    absorbed = tracing.records()
    assert len(absorbed) == 1
    assert absorbed[0].proc == "w0"
    assert absorbed[0].duration == 0.5


def test_absorb_accepts_plain_tuples(enabled_tracer):
    # Pickled worker payloads may arrive as bare tuples.
    tracing.absorb([("w1:s0001", None, "remote", 0.0, 0.25, "w1")])
    record = tracing.records()[0]
    assert isinstance(record, SpanRecord)
    assert record.name == "remote"


def test_record_as_dict():
    record = SpanRecord("s0001", None, "root", 0.0, 1.5, "")
    assert record.as_dict() == {
        "id": "s0001",
        "parent": None,
        "name": "root",
        "start": 0.0,
        "end": 1.5,
        "proc": "",
    }
