"""Property tests: algebra ↔ CQ conversions preserve semantics."""

from hypothesis import given, settings, strategies as st

from repro.cq.algebra import evaluate_algebra, from_cq, to_cq
from repro.cq.evaluation import evaluate
from repro.cq.homomorphism import are_equivalent
from repro.errors import QuerySyntaxError
from repro.relational import random_instance
from repro.workloads import random_keyed_schema, random_query

seeds = st.integers(0, 10_000)


@settings(max_examples=50, deadline=None)
@given(schema_seed=st.integers(0, 30), query_seed=seeds, data_seed=seeds)
def test_from_cq_agrees_with_evaluator(schema_seed, query_seed, data_seed):
    schema = random_keyed_schema(schema_seed, ["A", "B"], n_relations=2, max_arity=3)
    query = random_query(schema, seed=query_seed, max_atoms=3)
    try:
        expr = from_cq(query)
    except QuerySyntaxError:
        return  # free head constants are inexpressible in the pure algebra
    instance = random_instance(schema, rows_per_relation=4, seed=data_seed)
    assert evaluate_algebra(expr, instance) == frozenset(
        evaluate(query, instance).rows
    )


@settings(max_examples=40, deadline=None)
@given(schema_seed=st.integers(0, 30), query_seed=seeds)
def test_cq_algebra_cq_round_trip_equivalent(schema_seed, query_seed):
    schema = random_keyed_schema(schema_seed, ["A", "B"], n_relations=2, max_arity=3)
    query = random_query(schema, seed=query_seed, max_atoms=2)
    try:
        expr = from_cq(query)
    except QuerySyntaxError:
        return
    back = to_cq(expr, schema, view_name=query.view_name)
    assert are_equivalent(query, back, schema)


@settings(max_examples=40, deadline=None)
@given(schema_seed=st.integers(0, 30), query_seed=seeds, data_seed=seeds)
def test_to_cq_evaluates_like_algebra(schema_seed, query_seed, data_seed):
    schema = random_keyed_schema(schema_seed, ["A", "B"], n_relations=2, max_arity=3)
    query = random_query(schema, seed=query_seed, max_atoms=2)
    try:
        expr = from_cq(query)
    except QuerySyntaxError:
        return
    round_tripped = to_cq(expr, schema)
    instance = random_instance(schema, rows_per_relation=4, seed=data_seed)
    assert frozenset(evaluate(round_tripped, instance).rows) == evaluate_algebra(
        expr, instance
    )
