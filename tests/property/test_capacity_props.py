"""Property tests: capacity counting cross-validated by brute enumeration.

The closed-form count ``(1+N)^K`` per keyed relation must equal the brute
count produced by actually enumerating every key-satisfying instance over
the fragment — an end-to-end check tying :mod:`repro.core.capacity` to
:mod:`repro.mappings.exhaustive`.
"""

from hypothesis import given, settings, strategies as st

from repro.core.capacity import count_instances, count_relation_instances
from repro.mappings.exhaustive import (
    count_fragment_instances,
    enumerate_relation_instances,
)
from repro.workloads import random_keyed_schema, shuffled_copy


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 100), size=st.integers(1, 2))
def test_closed_form_matches_enumeration(seed, size):
    schema = random_keyed_schema(seed, ["A", "B"], n_relations=2, max_arity=2)
    sizes = {name: size for name in schema.type_names()}
    # With the row cap at the full tuple-space size, enumeration is total.
    max_rows = max(size ** r.arity for r in schema)
    assert count_fragment_instances(schema, sizes, max_rows=max_rows) == (
        count_instances(schema, sizes)
    )


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 100), size=st.integers(1, 2))
def test_per_relation_closed_form(seed, size):
    schema = random_keyed_schema(seed, ["A", "B"], n_relations=1, max_arity=3)
    relation = schema.relations[0]
    sizes = {name: size for name in schema.type_names()}
    max_rows = size ** relation.arity
    enumerated = sum(
        1 for _ in enumerate_relation_instances(relation, sizes, max_rows)
    )
    assert enumerated == count_relation_instances(relation, sizes)


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 200), shuffle_seed=st.integers(0, 200))
def test_isomorphic_schemas_count_equal(seed, shuffle_seed):
    schema = random_keyed_schema(seed, ["A", "B"], n_relations=2, max_arity=3)
    copy = shuffled_copy(schema, seed=shuffle_seed)
    for size in (1, 2, 3):
        sizes = {name: size for name in schema.type_names()}
        sizes_copy = {name: size for name in copy.type_names()}
        assert count_instances(schema, sizes) == count_instances(copy, sizes_copy)


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 100))
def test_counts_monotone_in_type_size(seed):
    schema = random_keyed_schema(seed, ["A", "B"], n_relations=2, max_arity=3)
    counts = [
        count_instances(schema, {name: size for name in schema.type_names()})
        for size in (1, 2, 3)
    ]
    assert counts[0] <= counts[1] <= counts[2]
