"""Property tests: certain-answer semantics over randomised naive tables."""

import random

from hypothesis import given, settings, strategies as st

from repro.cq.canonical import is_null, null_value
from repro.cq.certain import certain_answers, possible_answers
from repro.cq.chase import egds_of_schema
from repro.cq.evaluation import evaluate
from repro.errors import ChaseFailure
from repro.relational import DatabaseInstance, RelationInstance, Value
from repro.workloads import random_keyed_schema, random_query

seeds = st.integers(0, 10_000)


def nullified(schema, data_seed, null_probability=0.3):
    """A random instance with some values replaced by fresh labelled nulls."""
    from repro.relational import random_instance

    rng = random.Random(data_seed)
    base = random_instance(schema, rows_per_relation=4, seed=data_seed)
    counter = [0]

    def poke(row):
        out = []
        for value in row:
            if rng.random() < null_probability:
                counter[0] += 1
                out.append(null_value(value.type_name, f"n{counter[0]}"))
            else:
                out.append(value)
        return tuple(out)

    relations = {
        rel.schema.name: rel.map_rows(poke) for rel in base
    }
    return DatabaseInstance(schema, relations)


@settings(max_examples=40, deadline=None)
@given(schema_seed=st.integers(0, 30), query_seed=seeds, data_seed=seeds)
def test_certain_subset_of_possible(schema_seed, query_seed, data_seed):
    schema = random_keyed_schema(schema_seed, ["A", "B"], n_relations=2, max_arity=3)
    query = random_query(schema, seed=query_seed, max_atoms=2)
    table = nullified(schema, data_seed)
    certain = certain_answers(query, table)
    possible = possible_answers(query, table)
    if certain is None:
        assert possible is None
        return
    assert certain.rows <= possible.rows
    assert not any(is_null(v) for row in certain.rows for v in row)


@settings(max_examples=40, deadline=None)
@given(schema_seed=st.integers(0, 30), query_seed=seeds, data_seed=seeds)
def test_certain_answers_hold_in_one_completion(schema_seed, query_seed, data_seed):
    """Soundness spot-check: certain answers appear in the completion that
    instantiates each null with a distinct fresh value."""
    from repro.cq.canonical import instantiate_nulls

    schema = random_keyed_schema(schema_seed, ["A", "B"], n_relations=2, max_arity=3)
    query = random_query(schema, seed=query_seed, max_atoms=2)
    table = nullified(schema, data_seed)
    certain = certain_answers(query, table)
    if certain is None:
        return
    completion = instantiate_nulls(table)
    answers = evaluate(query, completion)
    assert certain.rows <= answers.rows


@settings(max_examples=30, deadline=None)
@given(schema_seed=st.integers(0, 30), query_seed=seeds, data_seed=seeds)
def test_dependencies_only_grow_certainty(schema_seed, query_seed, data_seed):
    """Chasing with key EGDs can only add certain answers (it resolves
    nulls), never remove any — unless it reveals inconsistency."""
    schema = random_keyed_schema(schema_seed, ["A", "B"], n_relations=2, max_arity=3)
    query = random_query(schema, seed=query_seed, max_atoms=2)
    table = nullified(schema, data_seed)
    plain = certain_answers(query, table)
    with_keys = certain_answers(query, table, egds=egds_of_schema(schema))
    if plain is None or with_keys is None:
        return
    assert plain.rows <= with_keys.rows


@settings(max_examples=40, deadline=None)
@given(schema_seed=st.integers(0, 30), query_seed=seeds, data_seed=seeds)
def test_null_free_tables_are_exact(schema_seed, query_seed, data_seed):
    """On a complete table, certain = possible = plain evaluation."""
    from repro.relational import random_instance

    schema = random_keyed_schema(schema_seed, ["A", "B"], n_relations=2, max_arity=3)
    query = random_query(schema, seed=query_seed, max_atoms=2)
    table = random_instance(schema, rows_per_relation=4, seed=data_seed)
    certain = certain_answers(query, table)
    assert certain.rows == evaluate(query, table).rows
