"""Property tests: chase soundness, idempotence, and containment-under-keys."""

from hypothesis import given, settings, strategies as st

from repro.cq.canonical import canonical_database
from repro.cq.chase import chase_egds, egds_of_schema, satisfies_egds
from repro.cq.containment_deps import is_contained_under_keys
from repro.cq.evaluation import evaluate
from repro.cq.homomorphism import is_contained_in
from repro.errors import ChaseFailure, TypecheckError
from repro.relational import random_instance
from repro.workloads import random_keyed_schema, random_query

seeds = st.integers(0, 10_000)


@settings(max_examples=50, deadline=None)
@given(schema_seed=st.integers(0, 30), query_seed=seeds)
def test_chase_reaches_fixpoint_and_is_idempotent(schema_seed, query_seed):
    schema = random_keyed_schema(schema_seed, ["A", "B"], n_relations=2, max_arity=3)
    query = random_query(schema, seed=query_seed, max_atoms=3)
    canonical = canonical_database(query, schema)
    if canonical is None:
        return
    egds = egds_of_schema(schema)
    try:
        result = chase_egds(canonical.instance, egds)
    except ChaseFailure:
        return
    assert satisfies_egds(result.instance, egds)
    again = chase_egds(result.instance, egds)
    assert again.instance == result.instance
    assert again.egd_rounds == 0


@settings(max_examples=50, deadline=None)
@given(schema_seed=st.integers(0, 30), query_seed=seeds)
def test_chase_never_grows_egd_only(schema_seed, query_seed):
    schema = random_keyed_schema(schema_seed, ["A", "B"], n_relations=2, max_arity=3)
    query = random_query(schema, seed=query_seed, max_atoms=3)
    canonical = canonical_database(query, schema)
    if canonical is None:
        return
    try:
        result = chase_egds(canonical.instance, egds_of_schema(schema))
    except ChaseFailure:
        return
    assert result.instance.total_rows() <= canonical.instance.total_rows()


@settings(max_examples=40, deadline=None)
@given(schema_seed=st.integers(0, 30), seed1=seeds, seed2=seeds)
def test_plain_containment_implies_keyed_containment(schema_seed, seed1, seed2):
    schema = random_keyed_schema(schema_seed, ["A", "B"], n_relations=2, max_arity=3)
    q1 = random_query(schema, seed=seed1, max_atoms=2, head_arity=1)
    q2 = random_query(schema, seed=seed2, max_atoms=2, head_arity=1)
    try:
        if is_contained_in(q1, q2, schema):
            assert is_contained_under_keys(q1, q2, schema)
    except TypecheckError:
        return


@settings(max_examples=40, deadline=None)
@given(schema_seed=st.integers(0, 30), seed1=seeds, seed2=seeds, data_seed=seeds)
def test_keyed_containment_sound_on_valid_instances(
    schema_seed, seed1, seed2, data_seed
):
    schema = random_keyed_schema(schema_seed, ["A", "B"], n_relations=2, max_arity=3)
    q1 = random_query(schema, seed=seed1, max_atoms=2, head_arity=1)
    q2 = random_query(schema, seed=seed2, max_atoms=2, head_arity=1)
    try:
        contained = is_contained_under_keys(q1, q2, schema)
    except TypecheckError:
        return
    if contained:
        instance = random_instance(schema, rows_per_relation=5, seed=data_seed)
        assert instance.satisfies_keys()
        assert evaluate(q1, instance).rows <= evaluate(q2, instance).rows
