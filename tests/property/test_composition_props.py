"""Property tests: query-mapping composition vs. pointwise composition."""

from hypothesis import given, settings, strategies as st

from repro.cq.syntax import Atom, ConjunctiveQuery, Variable
from repro.mappings import QueryMapping, identity_mapping
from repro.relational import random_instance
from repro.workloads import random_keyed_schema
from repro.workloads.query_gen import random_query

seeds = st.integers(0, 10_000)


def random_self_mapping(schema, seed):
    """A random query mapping schema → schema (views may be lossy)."""
    queries = {}
    for i, relation in enumerate(schema):
        query = random_query(
            schema,
            seed=seed + i * 101,
            max_atoms=2,
            head_arity=relation.arity,
            view_name=relation.name,
        )
        # Force the head type to match the relation exactly: rebuild the
        # head by picking, per attribute, a body variable of that type.
        from repro.cq.typecheck import infer_types

        types = infer_types(query, schema)
        by_type = {}
        for variable, type_name in types.items():
            by_type.setdefault(type_name, variable)
        if not all(a.type_name in by_type for a in relation.attributes):
            return None
        head = Atom(
            relation.name,
            tuple(by_type[a.type_name] for a in relation.attributes),
        )
        queries[relation.name] = ConjunctiveQuery(
            head, query.body, query.equalities
        )
    return QueryMapping(schema, schema, queries)


@settings(max_examples=40, deadline=None)
@given(schema_seed=st.integers(0, 30), m_seed=seeds, n_seed=seeds, d_seed=seeds)
def test_composition_agrees_pointwise(schema_seed, m_seed, n_seed, d_seed):
    schema = random_keyed_schema(schema_seed, ["A", "B"], n_relations=2, max_arity=3)
    m = random_self_mapping(schema, m_seed)
    n = random_self_mapping(schema, n_seed)
    if m is None or n is None:
        return
    composed = m.then(n)
    instance = random_instance(schema, rows_per_relation=4, seed=d_seed)
    assert composed.apply(instance) == n.apply(m.apply(instance))


@settings(max_examples=30, deadline=None)
@given(schema_seed=st.integers(0, 30), m_seed=seeds, d_seed=seeds)
def test_identity_is_composition_unit(schema_seed, m_seed, d_seed):
    schema = random_keyed_schema(schema_seed, ["A", "B"], n_relations=2, max_arity=3)
    m = random_self_mapping(schema, m_seed)
    if m is None:
        return
    ident = identity_mapping(schema)
    instance = random_instance(schema, rows_per_relation=4, seed=d_seed)
    assert ident.then(m).apply(instance) == m.apply(instance)
    assert m.then(ident).apply(instance) == m.apply(instance)


@settings(max_examples=20, deadline=None)
@given(
    schema_seed=st.integers(0, 30),
    a_seed=seeds,
    b_seed=seeds,
    c_seed=seeds,
    d_seed=seeds,
)
def test_composition_associative_pointwise(schema_seed, a_seed, b_seed, c_seed, d_seed):
    schema = random_keyed_schema(schema_seed, ["A", "B"], n_relations=2, max_arity=3)
    mappings = [random_self_mapping(schema, s) for s in (a_seed, b_seed, c_seed)]
    if any(m is None for m in mappings):
        return
    a, b, c = mappings
    instance = random_instance(schema, rows_per_relation=3, seed=d_seed)
    left = a.then(b).then(c)
    right = a.then(b.then(c))
    assert left.apply(instance) == right.apply(instance)
