"""Property tests: containment (Chandra–Merlin) against evaluation.

Soundness of the containment decision is checked semantically: whenever the
homomorphism test says q1 ⊆ q2, every random instance must confirm it; and
whenever it says q1 ⊄ q2, the instantiated canonical database of q1 must be
a concrete separating witness (that is the completeness argument made
executable).
"""

from hypothesis import given, settings, strategies as st

from repro.cq.canonical import canonical_database, instantiate_nulls
from repro.cq.evaluation import evaluate
from repro.cq.homomorphism import are_equivalent, is_contained_in
from repro.cq.minimize import minimize
from repro.errors import TypecheckError
from repro.relational import random_instance
from repro.workloads import random_keyed_schema, random_query

seeds = st.integers(0, 10_000)


def typed_pair(schema_seed, seed1, seed2):
    schema = random_keyed_schema(schema_seed, ["A", "B"], n_relations=2, max_arity=3)
    q1 = random_query(schema, seed=seed1, max_atoms=2, head_arity=2)
    q2 = random_query(schema, seed=seed2, max_atoms=2, head_arity=2)
    return schema, q1, q2


@settings(max_examples=50, deadline=None)
@given(schema_seed=st.integers(0, 30), seed1=seeds, seed2=seeds, data_seed=seeds)
def test_containment_sound_on_random_instances(schema_seed, seed1, seed2, data_seed):
    schema, q1, q2 = typed_pair(schema_seed, seed1, seed2)
    try:
        contained = is_contained_in(q1, q2, schema)
    except TypecheckError:
        return  # incomparable head types — nothing to check
    if contained:
        instance = random_instance(schema, rows_per_relation=5, seed=data_seed)
        assert evaluate(q1, instance).rows <= evaluate(q2, instance).rows


@settings(max_examples=50, deadline=None)
@given(schema_seed=st.integers(0, 30), seed1=seeds, seed2=seeds)
def test_non_containment_complete_via_canonical_witness(schema_seed, seed1, seed2):
    schema, q1, q2 = typed_pair(schema_seed, seed1, seed2)
    try:
        contained = is_contained_in(q1, q2, schema)
    except TypecheckError:
        return
    if not contained:
        canonical = canonical_database(q1, schema)
        assert canonical is not None  # unsatisfiable q1 would be contained
        witness = instantiate_nulls(canonical.instance)
        r1 = evaluate(q1, witness)
        r2 = evaluate(q2, witness)
        assert not r1.rows <= r2.rows


@settings(max_examples=40, deadline=None)
@given(schema_seed=st.integers(0, 30), seed1=seeds)
def test_containment_reflexive(schema_seed, seed1):
    schema, q1, _ = typed_pair(schema_seed, seed1, seed1)
    assert is_contained_in(q1, q1, schema)


@settings(max_examples=40, deadline=None)
@given(schema_seed=st.integers(0, 30), seed1=seeds)
def test_minimization_preserves_equivalence(schema_seed, seed1):
    schema, q1, _ = typed_pair(schema_seed, seed1, seed1)
    minimized = minimize(q1, schema)
    assert are_equivalent(q1, minimized, schema)
    assert len(minimized.body) <= len(q1.body)


@settings(max_examples=30, deadline=None)
@given(schema_seed=st.integers(0, 30), seed1=seeds, seed2=seeds, seed3=seeds)
def test_containment_transitive(schema_seed, seed1, seed2, seed3):
    schema = random_keyed_schema(schema_seed, ["A", "B"], n_relations=2, max_arity=3)
    queries = [
        random_query(schema, seed=s, max_atoms=2, head_arity=1)
        for s in (seed1, seed2, seed3)
    ]
    try:
        c12 = is_contained_in(queries[0], queries[1], schema)
        c23 = is_contained_in(queries[1], queries[2], schema)
        if c12 and c23:
            assert is_contained_in(queries[0], queries[2], schema)
    except TypecheckError:
        return
