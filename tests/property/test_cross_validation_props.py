"""Property tests: the three verification paths agree.

For random candidate mapping pairs over tiny schemas, the chase-based
exact decision, the gadget refuter, and the exhaustive finite-fragment
model checker must be mutually consistent:

* exhaustive counterexample found  ⟹  chase says "not identity";
* chase says "identity"            ⟹  no gadget or fragment counterexample;
* gadget counterexample found      ⟹  chase says "not identity".
"""

from hypothesis import given, settings, strategies as st

from repro.core.counterexample import find_round_trip_counterexample
from repro.cq.syntax import Atom, ConjunctiveQuery, Variable
from repro.mappings import QueryMapping
from repro.mappings.exhaustive import exhaustive_round_trip_counterexample
from repro.mappings.identity import composes_to_identity
from repro.mappings.validity import is_valid
from repro.relational import parse_schema

S1, _ = parse_schema("A(a1*: T, a2: U)")
S2, _ = parse_schema("M(m1*: T, m2: U)")
SIZES = {"T": 2, "U": 2}


def candidate_query(view: str, target, source, rng_choice: int) -> ConjunctiveQuery:
    """One of a small family of hand-rolled candidate views, by index."""
    source_name = source.relation_names[0]
    a, b = Variable("A"), Variable("B")
    c, d = Variable("C"), Variable("D")
    one_atom = [Atom(source_name, (a, b))]
    two_atoms = [Atom(source_name, (a, b)), Atom(source_name, (c, d))]
    shapes = [
        ConjunctiveQuery(Atom(view, (a, b)), one_atom),
        ConjunctiveQuery(Atom(view, (a, b)), two_atoms),
        ConjunctiveQuery(Atom(view, (a, d)), two_atoms),
        ConjunctiveQuery(Atom(view, (a, d)), two_atoms, [(a, c)]),
        ConjunctiveQuery(Atom(view, (a, b)), two_atoms, [(b, d)]),
        ConjunctiveQuery(Atom(view, (c, b)), two_atoms, [(a, c)]),
    ]
    return shapes[rng_choice % len(shapes)]


@settings(max_examples=36, deadline=None)
@given(alpha_idx=st.integers(0, 5), beta_idx=st.integers(0, 5))
def test_three_paths_agree(alpha_idx, beta_idx):
    alpha = QueryMapping(S1, S2, {"M": candidate_query("M", S2, S1, alpha_idx)})
    beta = QueryMapping(S2, S1, {"A": candidate_query("A", S1, S2, beta_idx)})
    if not (is_valid(alpha) and is_valid(beta)):
        return

    exact = composes_to_identity(alpha, beta)
    fragment = exhaustive_round_trip_counterexample(alpha, beta, SIZES, max_rows=2)
    gadget = find_round_trip_counterexample(alpha, beta)

    if exact:
        assert fragment is None
        assert gadget is None
    if fragment is not None:
        assert not exact
        assert beta.apply(alpha.apply(fragment)) != fragment
    if gadget is not None:
        assert not exact


@settings(max_examples=36, deadline=None)
@given(alpha_idx=st.integers(0, 5))
def test_validity_paths_agree(alpha_idx):
    from repro.mappings.exhaustive import exhaustive_validity_counterexample

    alpha = QueryMapping(S1, S2, {"M": candidate_query("M", S2, S1, alpha_idx)})
    exact = is_valid(alpha)
    fragment = exhaustive_validity_counterexample(alpha, SIZES, max_rows=2)
    if exact:
        assert fragment is None
    if fragment is not None:
        assert not exact
        assert not alpha.apply(fragment).satisfies_keys()
