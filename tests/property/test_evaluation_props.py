"""Property tests: the hash-join evaluator agrees with the naive evaluator,
and evaluation is monotone in the instance."""

from hypothesis import given, settings, strategies as st

from repro.cq.evaluation import evaluate, evaluate_naive
from repro.relational.instance import DatabaseInstance, RelationInstance
from repro.relational import random_instance
from repro.workloads import random_keyed_schema, random_query

seeds = st.integers(0, 10_000)


@settings(max_examples=60, deadline=None)
@given(schema_seed=st.integers(0, 40), query_seed=seeds, data_seed=seeds)
def test_evaluators_agree(schema_seed, query_seed, data_seed):
    schema = random_keyed_schema(schema_seed, ["A", "B"], n_relations=2, max_arity=3)
    query = random_query(schema, seed=query_seed, max_atoms=3)
    instance = random_instance(schema, rows_per_relation=5, seed=data_seed)
    assert evaluate(query, instance).rows == evaluate_naive(query, instance).rows


@settings(max_examples=40, deadline=None)
@given(schema_seed=st.integers(0, 40), query_seed=seeds, data_seed=seeds)
def test_evaluation_monotone(schema_seed, query_seed, data_seed):
    """CQs are monotone: answers only grow when tuples are added."""
    schema = random_keyed_schema(schema_seed, ["A", "B"], n_relations=2, max_arity=3)
    query = random_query(schema, seed=query_seed, max_atoms=2)
    small = random_instance(schema, rows_per_relation=3, seed=data_seed)
    # Superset instance: same seed prefix plus extra rows.
    bigger_raw = random_instance(schema, rows_per_relation=6, seed=data_seed + 1)
    union = DatabaseInstance(
        schema,
        {
            rel.name: RelationInstance(
                rel,
                set(small.relation(rel.name).rows)
                | set(bigger_raw.relation(rel.name).rows),
            )
            for rel in schema
        },
    )
    assert evaluate(query, small).rows <= evaluate(query, union).rows


@settings(max_examples=40, deadline=None)
@given(schema_seed=st.integers(0, 40), query_seed=seeds)
def test_empty_instance_gives_empty_answer(schema_seed, query_seed):
    schema = random_keyed_schema(schema_seed, ["A", "B"], n_relations=2, max_arity=3)
    query = random_query(schema, seed=query_seed, max_atoms=2)
    assert evaluate(query, DatabaseInstance(schema)).is_empty()
