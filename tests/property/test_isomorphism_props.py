"""Property tests: isomorphism invariants and Theorem 13 positive side."""

from hypothesis import given, settings, strategies as st

from repro.core import cq_equivalent, decide_equivalence
from repro.relational import canonical_form, find_isomorphism, is_isomorphic
from repro.workloads import random_keyed_schema, shuffled_copy

seeds = st.integers(0, 10_000)


@settings(max_examples=60, deadline=None)
@given(seed=seeds, shuffle_seed=seeds)
def test_shuffled_copies_isomorphic_with_verified_witness(seed, shuffle_seed):
    schema = random_keyed_schema(seed, ["A", "B", "C"], n_relations=3, max_arity=3)
    copy = shuffled_copy(schema, seed=shuffle_seed)
    witness = find_isomorphism(schema, copy)
    assert witness is not None
    assert witness.verify()
    assert witness.inverse().verify()


@settings(max_examples=60, deadline=None)
@given(seed1=st.integers(0, 200), seed2=st.integers(0, 200))
def test_canonical_form_complete_for_witness_search(seed1, seed2):
    s1 = random_keyed_schema(seed1, ["A", "B"], n_relations=2, max_arity=3)
    s2 = random_keyed_schema(seed2, ["A", "B"], n_relations=2, max_arity=3)
    assert (canonical_form(s1) == canonical_form(s2)) == (
        find_isomorphism(s1, s2) is not None
    )


@settings(max_examples=40, deadline=None)
@given(seed=seeds, shuffle_seed=seeds)
def test_theorem13_positive_side(seed, shuffle_seed):
    schema = random_keyed_schema(seed, ["A", "B"], n_relations=2, max_arity=3)
    copy = shuffled_copy(schema, seed=shuffle_seed)
    assert cq_equivalent(schema, copy)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 100), shuffle_seed=seeds)
def test_theorem13_certificates_verify(seed, shuffle_seed):
    schema = random_keyed_schema(seed, ["A", "B"], n_relations=2, max_arity=2)
    copy = shuffled_copy(schema, seed=shuffle_seed)
    decision = decide_equivalence(schema, copy)
    assert decision.equivalent
    assert decision.certificate.verify()


@settings(max_examples=60, deadline=None)
@given(seed1=st.integers(0, 200), seed2=st.integers(0, 200))
def test_isomorphism_symmetric(seed1, seed2):
    s1 = random_keyed_schema(seed1, ["A", "B"], n_relations=2, max_arity=3)
    s2 = random_keyed_schema(seed2, ["A", "B"], n_relations=2, max_arity=3)
    assert is_isomorphic(s1, s2) == is_isomorphic(s2, s1)
