"""Property tests: the κ construction on random isomorphism pairs."""

from hypothesis import given, settings, strategies as st

from repro.core.lemmas import check_lemma8, check_theorem9
from repro.mappings import isomorphism_pair, kappa_construction, kappa_schema
from repro.relational import find_isomorphism, random_instance
from repro.workloads import random_keyed_schema, shuffled_copy

seeds = st.integers(0, 10_000)


def pair_for(seed, shuffle_seed):
    s1 = random_keyed_schema(seed, ["A", "B"], n_relations=2, max_arity=3)
    s2 = shuffled_copy(s1, seed=shuffle_seed)
    return isomorphism_pair(find_isomorphism(s1, s2))


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 100), shuffle_seed=seeds)
def test_theorem9_always_holds(seed, shuffle_seed):
    alpha, beta = pair_for(seed, shuffle_seed)
    assert check_theorem9(alpha, beta).holds


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 100), shuffle_seed=seeds)
def test_lemma8_always_holds(seed, shuffle_seed):
    alpha, beta = pair_for(seed, shuffle_seed)
    construction = kappa_construction(alpha, beta)
    assert check_lemma8(construction, samples=2).holds


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 100), shuffle_seed=seeds, data_seed=seeds)
def test_gamma_pi_kappa_round_trip(seed, shuffle_seed, data_seed):
    """π_κ(γ(d_κ)) = d_κ for every instance of κ(S1)."""
    alpha, beta = pair_for(seed, shuffle_seed)
    construction = kappa_construction(alpha, beta)
    d_kappa = random_instance(
        construction.kappa_s1, rows_per_relation=4, seed=data_seed
    )
    padded = construction.gamma.apply(d_kappa)
    assert construction.pi_kappa_1.apply(padded) == d_kappa


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 100), shuffle_seed=seeds, data_seed=seeds)
def test_kappa_round_trip_pointwise(seed, shuffle_seed, data_seed):
    alpha, beta = pair_for(seed, shuffle_seed)
    construction = kappa_construction(alpha, beta)
    d_kappa = random_instance(
        construction.kappa_s1, rows_per_relation=3, seed=data_seed
    )
    image = construction.alpha_kappa.apply(d_kappa)
    assert construction.beta_kappa.apply(image) == d_kappa


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 100))
def test_kappa_schema_shape(seed):
    schema = random_keyed_schema(seed, ["A", "B"], n_relations=3, max_arity=3)
    kappa = kappa_schema(schema)
    assert kappa.is_unkeyed
    assert len(kappa) == len(schema)
    for original, projected in zip(schema, kappa):
        assert projected.arity == len(original.key)
        assert {a.name for a in projected.attributes} == set(original.key)
