"""Differential property tests for the performance layer.

Three matchers must agree on every random input: the indexed
most-constrained-first matcher (the default), the same matcher with full
scans (``use_index=False``), and the deliberately naive reference
(:func:`find_homomorphism_naive`).  Likewise the memoized containment
decision must agree with the cache-bypassing one — the perf layer is an
implementation detail, never a semantics change.
"""

from hypothesis import given, settings, strategies as st

from repro.cq.canonical import canonical_database
from repro.cq.homomorphism import (
    find_homomorphism,
    find_homomorphism_naive,
    is_contained_in,
)
from repro.errors import TypecheckError
from repro.utils import memo
from repro.workloads import random_keyed_schema, random_query

seeds = st.integers(0, 10_000)


def typed_pair(schema_seed, seed1, seed2):
    schema = random_keyed_schema(schema_seed, ["A", "B"], n_relations=2, max_arity=3)
    q1 = random_query(schema, seed=seed1, max_atoms=3, head_arity=2)
    q2 = random_query(schema, seed=seed2, max_atoms=2, head_arity=2)
    return schema, q1, q2


@settings(max_examples=60, deadline=None)
@given(schema_seed=st.integers(0, 30), seed1=seeds, seed2=seeds)
def test_indexed_scanning_and_naive_matchers_agree(schema_seed, seed1, seed2):
    schema, q1, q2 = typed_pair(schema_seed, seed1, seed2)
    canonical = canonical_database(q1, schema)
    if canonical is None:
        return  # unsatisfiable q1: nothing to match into
    indexed = find_homomorphism(q2, canonical, use_index=True)
    scanned = find_homomorphism(q2, canonical, use_index=False)
    naive = find_homomorphism_naive(q2, canonical)
    assert (indexed is None) == (scanned is None) == (naive is None)


@settings(max_examples=40, deadline=None)
@given(schema_seed=st.integers(0, 30), seed1=seeds, seed2=seeds)
def test_cached_and_uncached_containment_agree(schema_seed, seed1, seed2):
    schema, q1, q2 = typed_pair(schema_seed, seed1, seed2)
    memo.clear_all()
    try:
        memo.set_enabled(True)
        cached_cold = is_contained_in(q1, q2, schema)
        cached_warm = is_contained_in(q1, q2, schema)
        memo.set_enabled(False)
        uncached = is_contained_in(q1, q2, schema)
    except TypecheckError:
        return  # incomparable head types — nothing to compare
    finally:
        memo.set_enabled(True)
    assert cached_cold == cached_warm == uncached
