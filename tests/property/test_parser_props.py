"""Property tests: text round-trips for schemas, queries, and mappings."""

from hypothesis import given, settings, strategies as st

from repro.cq.parser import format_query, parse_query
from repro.mappings import format_mapping, isomorphism_pair, parse_mapping
from repro.relational import find_isomorphism, format_schema, parse_schema
from repro.workloads import (
    random_identity_join_query,
    random_keyed_schema,
    random_query,
    shuffled_copy,
)

seeds = st.integers(0, 10_000)


@settings(max_examples=60, deadline=None)
@given(seed=st.integers(0, 300))
def test_schema_round_trip(seed):
    schema = random_keyed_schema(seed, ["A", "B", "C"], n_relations=3, max_arity=4)
    parsed, inclusions = parse_schema(format_schema(schema))
    assert parsed == schema
    assert inclusions == ()


@settings(max_examples=60, deadline=None)
@given(schema_seed=st.integers(0, 50), query_seed=seeds)
def test_query_round_trip(schema_seed, query_seed):
    schema = random_keyed_schema(schema_seed, ["A", "B"], n_relations=2, max_arity=3)
    query = random_query(schema, seed=query_seed, max_atoms=3)
    assert parse_query(format_query(query)) == query


@settings(max_examples=40, deadline=None)
@given(schema_seed=st.integers(0, 50), query_seed=seeds)
def test_identity_join_query_round_trip(schema_seed, query_seed):
    schema = random_keyed_schema(schema_seed, ["A", "B"], n_relations=2, max_arity=3)
    query = random_identity_join_query(schema, seed=query_seed, max_atoms=4)
    assert parse_query(format_query(query)) == query


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 100), shuffle_seed=seeds)
def test_mapping_round_trip(seed, shuffle_seed):
    s1 = random_keyed_schema(seed, ["A", "B"], n_relations=2, max_arity=3)
    s2 = shuffled_copy(s1, seed=shuffle_seed)
    alpha, _ = isomorphism_pair(find_isomorphism(s1, s2))
    parsed = parse_mapping(format_mapping(alpha), s1, s2)
    assert parsed.queries() == alpha.queries()
