"""Property tests: the receives relation under renaming compositions.

For renaming (isomorphism-induced) mappings the receives relation is the
graph of the attribute bijection; composing two renamings composes the
graphs.  These are exactly the cases Theorem 13's easy direction produces,
so the properties pin down the analysis on its most important inputs.
"""

from hypothesis import given, settings, strategies as st

from repro.mappings import isomorphism_pair, renaming_mapping
from repro.relational import QualifiedAttribute, find_isomorphism
from repro.workloads import random_keyed_schema, shuffled_copy

seeds = st.integers(0, 10_000)


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 100), shuffle_seed=seeds)
def test_renaming_receives_is_witness_graph(seed, shuffle_seed):
    s1 = random_keyed_schema(seed, ["A", "B"], n_relations=2, max_arity=3)
    s2 = shuffled_copy(s1, seed=shuffle_seed)
    witness = find_isomorphism(s1, s2)
    mapping = renaming_mapping(witness)
    receives = mapping.receives()
    for src_rel in s1:
        tgt_name = witness.relation_map[src_rel.name]
        amap = witness.attribute_maps[src_rel.name]
        tgt_rel = s2.relation(tgt_name)
        for attr in src_rel.attributes:
            source = QualifiedAttribute(src_rel.name, attr.name, attr.type_name)
            target = QualifiedAttribute(
                tgt_name, amap[attr.name], attr.type_name
            )
            # The target receives exactly its matched source attribute.
            assert receives.received_by(target) == frozenset({source})
            assert receives.constant_received(target) is None


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 100), shuffle1=seeds, shuffle2=seeds)
def test_receives_composes_through_renamings(seed, shuffle1, shuffle2):
    s1 = random_keyed_schema(seed, ["A", "B"], n_relations=2, max_arity=3)
    s2 = shuffled_copy(s1, seed=shuffle1)
    s3 = shuffled_copy(s1, seed=shuffle2)
    w12 = find_isomorphism(s1, s2)
    w23 = find_isomorphism(s2, s3)
    first = renaming_mapping(w12)
    second = renaming_mapping(w23)
    composed = first.then(second)
    receives = composed.receives()
    r12 = first.receives()
    r23 = second.receives()
    for target in s3.qualified_attributes():
        mids = r23.received_by(target)
        expected = frozenset(
            source for mid in mids for source in r12.received_by(mid)
        )
        assert receives.received_by(target) == expected


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 100), shuffle_seed=seeds)
def test_round_trip_receives_is_identity_graph(seed, shuffle_seed):
    """β∘α of an isomorphism pair receives each attribute from itself."""
    s1 = random_keyed_schema(seed, ["A", "B"], n_relations=2, max_arity=3)
    s2 = shuffled_copy(s1, seed=shuffle_seed)
    alpha, beta = isomorphism_pair(find_isomorphism(s1, s2))
    theta = alpha.then(beta)
    receives = theta.receives()
    for attr in s1.qualified_attributes():
        assert receives.received_by(attr) == frozenset({attr})
