"""Property tests: Lemmas 1 and 2 over random identity-join queries."""

from hypothesis import given, settings, strategies as st

from repro.core.lemmas import check_lemma1, check_lemma2
from repro.cq.evaluation import evaluate
from repro.cq.homomorphism import are_equivalent, is_contained_in
from repro.cq.saturation import (
    is_ij_saturated,
    is_product_query,
    lemma2_hat,
    saturate,
    to_product_query,
)
from repro.relational import random_instance
from repro.workloads import random_identity_join_query, random_keyed_schema

seeds = st.integers(0, 10_000)


@settings(max_examples=60, deadline=None)
@given(schema_seed=st.integers(0, 30), query_seed=seeds)
def test_saturate_produces_saturated_subquery(schema_seed, query_seed):
    schema = random_keyed_schema(schema_seed, ["A", "B"], n_relations=2, max_arity=3)
    query = random_identity_join_query(schema, seed=query_seed, max_atoms=3)
    saturated = saturate(query)
    assert is_ij_saturated(saturated)
    assert is_contained_in(saturated, query, schema)


@settings(max_examples=60, deadline=None)
@given(schema_seed=st.integers(0, 30), query_seed=seeds)
def test_lemma1_product_equivalence(schema_seed, query_seed):
    """Lemma 1 as a property: saturate, productify, still equivalent."""
    schema = random_keyed_schema(schema_seed, ["A", "B"], n_relations=2, max_arity=3)
    query = random_identity_join_query(schema, seed=query_seed, max_atoms=3)
    saturated = saturate(query)
    product = to_product_query(saturated)
    assert is_product_query(product)
    assert are_equivalent(saturated, product, schema)


@settings(max_examples=40, deadline=None)
@given(schema_seed=st.integers(0, 30), query_seed=seeds, data_seed=seeds)
def test_lemma2_all_conditions(schema_seed, query_seed, data_seed):
    """Lemma 2 (a)-(d) as executable properties on random instances."""
    schema = random_keyed_schema(schema_seed, ["A", "B"], n_relations=2, max_arity=3)
    query = random_identity_join_query(schema, seed=query_seed, max_atoms=3)
    instances = [
        random_instance(schema, rows_per_relation=4, seed=data_seed + i)
        for i in range(2)
    ]
    check = check_lemma2(query, schema, instances)
    assert check.holds, check.detail


@settings(max_examples=40, deadline=None)
@given(schema_seed=st.integers(0, 30), query_seed=seeds, data_seed=seeds)
def test_lemma2_nonemptiness_pointwise(schema_seed, query_seed, data_seed):
    """Condition (c) directly: q(d) non-empty implies q̂(d) non-empty."""
    schema = random_keyed_schema(schema_seed, ["A", "B"], n_relations=2, max_arity=3)
    query = random_identity_join_query(schema, seed=query_seed, max_atoms=3)
    hat = lemma2_hat(query)
    instance = random_instance(schema, rows_per_relation=5, seed=data_seed)
    if not evaluate(query, instance).is_empty():
        assert not evaluate(hat, instance).is_empty()


@settings(max_examples=40, deadline=None)
@given(schema_seed=st.integers(0, 30), query_seed=seeds, data_seed=seeds)
def test_lemma1_check_helper(schema_seed, query_seed, data_seed):
    schema = random_keyed_schema(schema_seed, ["A", "B"], n_relations=2, max_arity=3)
    query = saturate(
        random_identity_join_query(schema, seed=query_seed, max_atoms=3)
    )
    instance = random_instance(schema, rows_per_relation=4, seed=data_seed)
    check = check_lemma1(query, schema, [instance])
    assert check.holds, check.detail
