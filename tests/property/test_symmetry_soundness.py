"""Property: symmetry reduction never changes a Theorem-13 verdict.

The fabric planner (satellite of the sharded-scan ISSUE) skips any pair
isomorphic — as an unordered pair of schemas — to an already-planned
representative, recording a ``symmetric`` verdict that points at it.
That is sound only if the scanned outcome (isomorphism flag, bounded
equivalence witness, verdict) is invariant under replacing either schema
by an isomorphic copy.  This suite checks exactly that, the way the
ISSUE words it: over 50 random schema pairs, every pair the planner
would skip as ``symmetric`` produces, when scanned directly, the same
outcome as its representative.
"""

import pytest

from repro.core.search import theorem13_cell
from repro.scanfabric import symmetry_map
from repro.workloads.schema_gen import random_keyed_schema, shuffled_copy

TYPES = ("T", "U")
N_PAIRS = 50


def _universe(seed):
    """A 4-schema universe with built-in redundancy: two random schemas
    plus a renamed/re-ordered copy of each."""
    first = random_keyed_schema(seed, TYPES, n_relations=1 + seed % 2,
                                max_arity=2)
    second = random_keyed_schema(seed + 1000, TYPES, n_relations=1 + seed % 2,
                                 max_arity=2)
    return [
        first,
        second,
        shuffled_copy(first, seed=seed + 1),
        shuffled_copy(second, seed=seed + 2),
    ]


@pytest.mark.parametrize("seed", range(N_PAIRS))
def test_symmetric_pairs_scan_identically_to_their_representative(seed):
    schemas = _universe(seed)
    redundant = symmetry_map(schemas)
    # The copies guarantee genuine reduction work on every seed.
    assert redundant, "shuffled copies must collapse into existing classes"
    for (i, j), (a, b) in redundant.items():
        skipped = theorem13_cell(schemas[i], schemas[j], max_atoms=1)
        representative = theorem13_cell(schemas[a], schemas[b], max_atoms=1)
        assert skipped == representative, (
            f"seed {seed}: cell ({i}, {j}) scanned as {skipped} but its "
            f"representative ({a}, {b}) scanned as {representative}"
        )
