"""Property tests: UCQ containment against evaluation semantics."""

from hypothesis import given, settings, strategies as st

from repro.cq.ucq import (
    UnionQuery,
    evaluate_union,
    minimize_union,
    union_contained_in,
    unions_equivalent,
)
from repro.errors import TypecheckError
from repro.relational import random_instance
from repro.workloads import random_keyed_schema, random_query

seeds = st.integers(0, 10_000)


def make_union(schema, base_seed, disjuncts):
    queries = []
    for i in range(disjuncts):
        queries.append(
            random_query(schema, seed=base_seed + i * 97, max_atoms=2, head_arity=1)
        )
    return UnionQuery(queries)


@settings(max_examples=40, deadline=None)
@given(schema_seed=st.integers(0, 30), seed1=seeds, seed2=seeds, data_seed=seeds)
def test_union_containment_sound(schema_seed, seed1, seed2, data_seed):
    schema = random_keyed_schema(schema_seed, ["A", "B"], n_relations=2, max_arity=3)
    left = make_union(schema, seed1, 2)
    right = make_union(schema, seed2, 2)
    try:
        left.check_types(schema)
        right.check_types(schema)
        contained = union_contained_in(left, right, schema)
    except TypecheckError:
        return
    if contained:
        instance = random_instance(schema, rows_per_relation=5, seed=data_seed)
        assert (
            evaluate_union(left, instance).rows
            <= evaluate_union(right, instance).rows
        )


@settings(max_examples=40, deadline=None)
@given(schema_seed=st.integers(0, 30), seed1=seeds, data_seed=seeds)
def test_union_evaluation_is_disjunct_union(schema_seed, seed1, data_seed):
    schema = random_keyed_schema(schema_seed, ["A", "B"], n_relations=2, max_arity=3)
    union = make_union(schema, seed1, 3)
    try:
        union.check_types(schema)
    except TypecheckError:
        return
    from repro.cq.evaluation import evaluate, synthesize_view_schema

    instance = random_instance(schema, rows_per_relation=4, seed=data_seed)
    view = synthesize_view_schema(union.disjuncts[0], schema)
    expected = set()
    for disjunct in union.disjuncts:
        expected |= evaluate(disjunct, instance, view).rows
    assert evaluate_union(union, instance, view).rows == expected


@settings(max_examples=30, deadline=None)
@given(schema_seed=st.integers(0, 30), seed1=seeds)
def test_minimize_union_preserves_equivalence(schema_seed, seed1):
    schema = random_keyed_schema(schema_seed, ["A", "B"], n_relations=2, max_arity=3)
    union = make_union(schema, seed1, 3)
    try:
        union.check_types(schema)
    except TypecheckError:
        return
    minimized = minimize_union(union, schema)
    assert len(minimized) <= len(union)
    assert unions_equivalent(union, minimized, schema)


@settings(max_examples=30, deadline=None)
@given(schema_seed=st.integers(0, 30), seed1=seeds)
def test_union_contains_each_disjunct(schema_seed, seed1):
    schema = random_keyed_schema(schema_seed, ["A", "B"], n_relations=2, max_arity=3)
    union = make_union(schema, seed1, 3)
    try:
        union.check_types(schema)
    except TypecheckError:
        return
    for disjunct in union.disjuncts:
        assert union_contained_in(UnionQuery([disjunct]), union, schema)
