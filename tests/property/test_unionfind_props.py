"""Property tests: union-find invariants."""

from hypothesis import given, strategies as st

from repro.utils.unionfind import UnionFind

pairs = st.lists(
    st.tuples(st.integers(0, 20), st.integers(0, 20)), max_size=40
)


@given(pairs)
def test_connected_is_equivalence_relation(union_pairs):
    uf = UnionFind(range(21))
    for a, b in union_pairs:
        uf.union(a, b)
    # Reflexive and symmetric by construction; check transitivity on a
    # sample of triples via representatives.
    reps = uf.representative_map()
    for a, b in union_pairs:
        assert reps[a] == reps[b]
    for x in range(21):
        assert uf.connected(x, x)


@given(pairs)
def test_classes_partition(union_pairs):
    uf = UnionFind(range(21))
    for a, b in union_pairs:
        uf.union(a, b)
    classes = uf.classes()
    seen = set()
    for cls in classes:
        assert cls.isdisjoint(seen)
        seen |= cls
    assert seen == set(range(21))


@given(pairs, pairs)
def test_union_order_irrelevant(first, second):
    uf1 = UnionFind(range(21))
    for a, b in first + second:
        uf1.union(a, b)
    uf2 = UnionFind(range(21))
    for a, b in second + first:
        uf2.union(a, b)
    canonical1 = sorted(sorted(c) for c in uf1.classes())
    canonical2 = sorted(sorted(c) for c in uf2.classes())
    assert canonical1 == canonical2


@given(pairs)
def test_copy_preserves_classes(union_pairs):
    uf = UnionFind(range(21))
    for a, b in union_pairs:
        uf.union(a, b)
    clone = uf.copy()
    assert sorted(map(sorted, clone.classes())) == sorted(
        map(sorted, uf.classes())
    )
