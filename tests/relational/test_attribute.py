"""Unit tests for attributes and qualified attributes."""

import pytest

from repro.errors import SchemaError
from repro.relational.attribute import Attribute, QualifiedAttribute, make_attribute


def test_attribute_fields_and_rename():
    attr = Attribute("name", "Str")
    assert attr.name == "name" and attr.type_name == "Str"
    renamed = attr.renamed("label")
    assert renamed == Attribute("label", "Str")


def test_qualified_attribute_fields():
    q = QualifiedAttribute("R", "a", "T")
    assert q.relation == "R"
    assert q.name == "a"
    assert q.type_name == "T"


def test_qualified_attributes_hashable_and_distinct():
    assert QualifiedAttribute("R", "a", "T") == QualifiedAttribute("R", "a", "T")
    assert QualifiedAttribute("R", "a", "T") != QualifiedAttribute("S", "a", "T")
    {QualifiedAttribute("R", "a", "T")}


def test_make_attribute_coercions():
    assert make_attribute(Attribute("a", "T")) == Attribute("a", "T")
    assert make_attribute(("a", "T")) == Attribute("a", "T")
    assert make_attribute("a", default_type="T") == Attribute("a", "T")


def test_make_attribute_requires_type():
    with pytest.raises(SchemaError):
        make_attribute("a")
    with pytest.raises(SchemaError):
        make_attribute(42)  # type: ignore[arg-type]
