"""Unit tests for the schema builder DSL and text parser."""

import pytest

from repro.errors import SchemaError
from repro.relational.attribute import Attribute
from repro.relational.catalog import format_schema, parse_schema, relation, schema


def test_relation_builder_with_tuples():
    rel = relation("R", [("a", "T"), ("b", "U")], key=["a"])
    assert rel.key == frozenset({"a"})
    assert rel.type_signature == ("T", "U")


def test_relation_builder_star_key():
    rel = relation("R", ["a*", "b"], default_type="X")
    assert rel.key == frozenset({"a"})
    assert rel.attribute("b").type_name == "X"


def test_relation_builder_explicit_key_overrides_stars():
    rel = relation("R", ["a*", "b"], key=["b"], default_type="X")
    assert rel.key == frozenset({"b"})


def test_relation_builder_attribute_objects():
    rel = relation("R", [Attribute("a", "T")])
    assert rel.key is None


def test_parse_schema_basic():
    s, incs = parse_schema(
        """
        # a comment
        employee(ss*: SSN, name: Name)
        dept(id*: DeptId)
        """
    )
    assert s.relation_names == ("employee", "dept")
    assert s.relation("employee").key == frozenset({"ss"})
    assert incs == ()


def test_parse_schema_default_type():
    s, _ = parse_schema("R(a*, b)", default_type="D")
    assert s.relation("R").attribute("b").type_name == "D"


def test_parse_schema_inclusions():
    s, incs = parse_schema(
        """
        R(a*: T, b: U)
        S(x*: U)
        R[b] <= S[x]
        """
    )
    assert len(incs) == 1
    assert incs[0].source == "R" and incs[0].target == "S"


def test_parse_schema_multi_attribute_inclusion():
    s, incs = parse_schema(
        """
        R(a*: T, b: U)
        S(x*: T, y: U)
        R[a, b] <= S[x, y]
        """
    )
    assert incs[0].source_attrs == ("a", "b")


def test_parse_schema_rejects_bad_inclusion_types():
    with pytest.raises(Exception):
        parse_schema(
            """
            R(a*: T)
            S(x*: U)
            R[a] <= S[x]
            """
        )


def test_parse_schema_rejects_garbage():
    with pytest.raises(SchemaError):
        parse_schema("not a relation decl (")


def test_parse_schema_rejects_empty():
    with pytest.raises(SchemaError):
        parse_schema("# only a comment")


def test_parse_schema_rejects_no_attributes():
    with pytest.raises(SchemaError):
        parse_schema("R()")


def test_format_round_trips():
    text = """
    employee(ss*: SSN, name: Name)
    dept(id*: DeptId, mgr: SSN)
    dept[mgr] <= employee[ss]
    """
    s, incs = parse_schema(text)
    formatted = format_schema(s, incs)
    s2, incs2 = parse_schema(formatted)
    assert s == s2
    assert incs == incs2


def test_unkeyed_relations_parse():
    s, _ = parse_schema("E(src: Node, dst: Node)")
    assert not s.relation("E").is_keyed
