"""Unit tests for SQL DDL export."""

from repro.relational import parse_schema
from repro.relational.ddl import domain_ddl, inclusion_ddl, relation_ddl, to_ddl
from repro.workloads import paper_schema_1


def test_domain_ddl_per_type():
    s, _ = parse_schema("R(a*: T, b: U)")
    statements = domain_ddl(s)
    assert len(statements) == 2
    assert any('"T"' in stmt for stmt in statements)
    assert all(stmt.startswith("CREATE DOMAIN") for stmt in statements)


def test_relation_ddl_with_primary_key():
    s, _ = parse_schema("R(a*: T, b*: T, c: U)")
    ddl = relation_ddl(s.relation("R"))
    assert ddl.startswith('CREATE TABLE "R"')
    assert "PRIMARY KEY" in ddl
    assert '"a"' in ddl and '"b"' in ddl and '"c"' in ddl
    assert "NOT NULL" in ddl


def test_relation_ddl_unkeyed_no_pk():
    s, _ = parse_schema("E(a: T, b: T)")
    ddl = relation_ddl(s.relation("E"))
    assert "PRIMARY KEY" not in ddl


def test_inclusion_to_foreign_key():
    s, incs = parse_schema(
        """
        R(a*: T, b: U)
        S(x*: U)
        R[b] <= S[x]
        """
    )
    ddl = inclusion_ddl(s, incs[0])
    assert ddl.startswith("ALTER TABLE")
    assert "FOREIGN KEY" in ddl
    assert 'REFERENCES "S"' in ddl


def test_non_key_inclusion_becomes_comment():
    s, incs = parse_schema(
        """
        R(a*: T, b: U)
        S(x*: U, y: T)
        R[a] <= S[y]
        """
    )
    ddl = inclusion_ddl(s, incs[0])
    assert ddl.startswith("--")


def test_full_script_on_paper_schema():
    schema1, inclusions = paper_schema_1()
    script = to_ddl(schema1, inclusions)
    assert script.count("CREATE TABLE") == 3
    # All three §1 inclusions target keys, so all become FKs.
    assert script.count("FOREIGN KEY") == 3
    assert script.endswith("\n")
