"""Unit tests for FD, key, and inclusion dependencies (paper §2 semantics)."""

import pytest

from repro.errors import DependencyError
from repro.relational.catalog import relation, schema
from repro.relational.dependencies import (
    FunctionalDependency,
    InclusionDependency,
    KeyDependency,
    key_dependencies,
)
from repro.relational.domain import Value
from repro.relational.instance import DatabaseInstance


@pytest.fixture
def s():
    return schema(
        relation("R", [("a", "T"), ("b", "U"), ("c", "U")], key=["a"]),
        relation("S", [("x", "T"), ("y", "U")], key=["x"]),
    )


def instance(s, r_rows, s_rows=()):
    return DatabaseInstance.from_rows(
        s,
        {
            "R": [
                (Value("T", a), Value("U", b), Value("U", c)) for a, b, c in r_rows
            ],
            "S": [(Value("T", x), Value("U", y)) for x, y in s_rows],
        },
    )


def test_fd_satisfaction_within_relation(s):
    fd = FunctionalDependency.of_relation(s.relation("R"), ["b"], ["c"])
    good = instance(s, [(1, 10, 100), (2, 10, 100)])
    assert fd.satisfied_by(good)
    bad = instance(s, [(1, 10, 100), (2, 10, 200)])
    assert not fd.satisfied_by(bad)


def test_cross_relation_fd_fails_for_every_instance(s):
    """Paper §2: a cross-relation FD fails for any instance."""
    fd = FunctionalDependency(
        [s.relation("R").qualify("a")], [s.relation("S").qualify("y")]
    )
    assert fd.single_relation() is None
    assert not fd.satisfied_by(instance(s, []))  # even the empty instance


def test_fd_empty_rhs_rejected(s):
    with pytest.raises(DependencyError):
        FunctionalDependency([s.relation("R").qualify("a")], [])


def test_fd_empty_lhs_means_constant_column(s):
    fd = FunctionalDependency([], [s.relation("R").qualify("b")])
    assert fd.satisfied_by(instance(s, [(1, 10, 100), (2, 10, 200)]))
    assert not fd.satisfied_by(instance(s, [(1, 10, 100), (2, 20, 200)]))


def test_key_dependency_satisfaction(s):
    key = KeyDependency.of_relation(s.relation("R"))
    assert key.satisfied_by(instance(s, [(1, 10, 100), (2, 10, 100)]))
    assert not key.satisfied_by(instance(s, [(1, 10, 100), (1, 20, 200)]))


def test_key_dependency_as_fd(s):
    key = KeyDependency("R", ["a"])
    fd = key.as_fd(s)
    assert {q.attribute for q in fd.lhs} == {"a"}
    assert {q.attribute for q in fd.rhs} == {"a", "b", "c"}


def test_key_dependency_requires_declared_key():
    unkeyed = relation("R", [("a", "T")])
    with pytest.raises(DependencyError):
        KeyDependency.of_relation(unkeyed)


def test_key_dependencies_of_schema(s):
    keys = key_dependencies(s)
    assert {k.relation for k in keys} == {"R", "S"}


def test_inclusion_dependency_satisfaction(s):
    inc = InclusionDependency("R", ["a"], "S", ["x"])
    inc.validate(s)
    ok = instance(s, [(1, 10, 100)], [(1, 50)])
    assert inc.satisfied_by(ok)
    bad = instance(s, [(1, 10, 100)], [(2, 50)])
    assert not inc.satisfied_by(bad)


def test_inclusion_dependency_type_mismatch(s):
    inc = InclusionDependency("R", ["b"], "S", ["x"])  # U vs T
    with pytest.raises(DependencyError):
        inc.validate(s)


def test_inclusion_dependency_arity_mismatch():
    with pytest.raises(DependencyError):
        InclusionDependency("R", ["a", "b"], "S", ["x"])


def test_inclusion_dependency_empty_rejected():
    with pytest.raises(DependencyError):
        InclusionDependency("R", [], "S", [])


def test_inclusion_multi_column(s):
    inc = InclusionDependency("R", ["a", "b"], "R", ["a", "c"])
    # row where (a, b) == some (a, c) projection
    ok = instance(s, [(1, 10, 10)])
    assert inc.satisfied_by(ok)
    bad = instance(s, [(1, 10, 20)])
    assert not inc.satisfied_by(bad)


def test_dependency_equality_and_hash(s):
    assert KeyDependency("R", ["a"]) == KeyDependency("R", ("a",))
    assert hash(InclusionDependency("R", ["a"], "S", ["x"])) == hash(
        InclusionDependency("R", ["a"], "S", ["x"])
    )
