"""Unit tests for domains, attribute types, and typed values."""

import pytest

from repro.errors import SchemaError, TypeMismatchError
from repro.relational.domain import AttributeType, Domain, Value, default_domain


def test_values_of_different_types_are_distinct():
    assert Value("A", 1) != Value("B", 1)


def test_attribute_type_wraps_values():
    t = AttributeType("Str")
    v = t.value("alice")
    assert v.type_name == "Str" and v.token == "alice"
    assert t.contains(v)


def test_attribute_type_check_rejects_wrong_type():
    t = AttributeType("Str")
    with pytest.raises(TypeMismatchError):
        t.check(Value("Int", 5))


def test_attribute_type_equality_by_name():
    assert AttributeType("X") == AttributeType("X")
    assert AttributeType("X") != AttributeType("Y")
    assert hash(AttributeType("X")) == hash(AttributeType("X"))


def test_attribute_type_rejects_empty_name():
    with pytest.raises(SchemaError):
        AttributeType("")


def test_fresh_values_avoid_existing():
    t = AttributeType("T")
    existing = [t.value(0), t.value(1)]
    fresh = t.fresh_values(3, avoid=existing)
    assert len(fresh) == 3
    assert set(fresh).isdisjoint(existing)
    assert all(v.type_name == "T" for v in fresh)


def test_fresh_values_ignore_other_types():
    t = AttributeType("T")
    fresh = t.fresh_values(1, avoid=[Value("U", 0)])
    assert fresh[0] == t.value(0)


def test_domain_registers_and_lazily_creates_types():
    domain = Domain()
    t = domain.type("New")
    assert t.name == "New"
    assert "New" in domain
    assert domain.type("New") is t


def test_domain_choice_function_is_fixed():
    domain = Domain()
    assert domain.choice("T") == domain.choice("T")
    assert domain.choice("T").type_name == "T"
    assert domain.choice("T") != domain.choice("U")


def test_domain_check_value():
    domain = default_domain(["A"])
    domain.check_value(Value("A", 1))
    with pytest.raises(TypeMismatchError):
        domain.check_value(Value("B", 1))


def test_default_domain_contents():
    domain = default_domain(["A", "B"])
    assert len(domain) == 2
    assert {t.name for t in domain} == {"A", "B"}
