"""Unit tests for classical FD theory (closure, keys, covers)."""

from repro.relational.fd_theory import (
    candidate_keys,
    closure,
    equivalent_covers,
    fd,
    implies,
    is_key,
    is_superkey,
    minimal_cover,
    project_fds,
)


def test_closure_fixpoint():
    fds = [fd("A", "B"), fd("B", "C")]
    assert closure({"A"}, fds) == frozenset({"A", "B", "C"})
    assert closure({"B"}, fds) == frozenset({"B", "C"})
    assert closure({"C"}, fds) == frozenset({"C"})


def test_closure_with_composite_lhs():
    fds = [fd("AB", "C")]
    assert "C" not in closure({"A"}, fds)
    assert "C" in closure({"A", "B"}, fds)


def test_implies():
    fds = [fd("A", "B"), fd("B", "C")]
    assert implies(fds, fd("A", "C"))
    assert not implies(fds, fd("C", "A"))


def test_equivalent_covers():
    fds1 = [fd("A", "B"), fd("B", "C")]
    fds2 = [fd("A", "BC"), fd("B", "C")]
    assert equivalent_covers(fds1, fds2)
    assert not equivalent_covers(fds1, [fd("A", "B")])


def test_superkey_and_key():
    attrs = ["A", "B", "C"]
    fds = [fd("A", "BC")]
    assert is_superkey({"A"}, attrs, fds)
    assert is_superkey({"A", "B"}, attrs, fds)
    assert is_key({"A"}, attrs, fds)
    assert not is_key({"A", "B"}, attrs, fds)


def test_candidate_keys_simple():
    attrs = ["A", "B", "C"]
    fds = [fd("A", "B"), fd("B", "C")]
    assert candidate_keys(attrs, fds) == [frozenset({"A"})]


def test_candidate_keys_multiple():
    # A -> B, B -> A: both A+C and B+C are keys.
    attrs = ["A", "B", "C"]
    fds = [fd("A", "B"), fd("B", "A"), fd("AC", "ABC"), fd("BC", "ABC")]
    keys = candidate_keys(attrs, fds)
    assert frozenset({"A", "C"}) in keys
    assert frozenset({"B", "C"}) in keys


def test_minimal_cover_removes_redundancy():
    fds = [fd("A", "B"), fd("B", "C"), fd("A", "C")]  # A->C is redundant
    cover = minimal_cover(fds)
    assert equivalent_covers(cover, fds)
    assert (frozenset({"A"}), frozenset({"C"})) not in cover


def test_minimal_cover_trims_extraneous_lhs():
    fds = [fd("A", "B"), fd("AB", "C")]  # B extraneous in AB->C? A->B so yes
    cover = minimal_cover(fds)
    assert equivalent_covers(cover, fds)
    assert (frozenset({"A"}), frozenset({"C"})) in cover


def test_project_fds():
    fds = [fd("A", "B"), fd("B", "C")]
    projected = project_fds(fds, ["A", "C"])
    assert implies(projected, fd("A", "C"))
    assert not implies(projected, fd("C", "A"))
