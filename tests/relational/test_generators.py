"""Unit tests for the proof-gadget and random instance generators."""

import pytest

from repro.errors import InstanceError
from repro.relational import (
    QualifiedAttribute,
    Value,
    attribute_specific_instance,
    empty_instance,
    g_swap,
    random_instance,
    single_tuple_instance,
    two_key_values,
)


def test_attribute_specific_instance_is_attribute_specific(two_relation_schema):
    inst = attribute_specific_instance(two_relation_schema, rows_per_relation=3)
    assert inst.is_attribute_specific()
    assert inst.satisfies_keys()
    assert inst.all_nonempty()
    for rel in inst:
        assert len(rel) == 3


def test_attribute_specific_instance_avoids_values(two_relation_schema):
    avoid = [Value("T", i) for i in range(10)]
    inst = attribute_specific_instance(two_relation_schema, avoid=avoid)
    assert inst.values().isdisjoint(avoid)


def test_attribute_specific_rejects_zero_rows(two_relation_schema):
    with pytest.raises(InstanceError):
        attribute_specific_instance(two_relation_schema, rows_per_relation=0)


def test_vary_gives_two_rows_differing_only_there(two_relation_schema):
    vary = QualifiedAttribute("R", "a", "T")
    inst = attribute_specific_instance(two_relation_schema, vary=vary)
    r = inst.relation("R")
    assert len(r) == 2
    rows = sorted(r.rows, key=repr)
    pos = r.schema.position("a")
    assert rows[0][pos] != rows[1][pos]
    for i in range(r.schema.arity):
        if i != pos:
            assert rows[0][i] == rows[1][i]
    # Other relations still single-row.
    assert len(inst.relation("S")) == 1


def test_two_key_values_returns_the_pair(two_relation_schema):
    vary = QualifiedAttribute("R", "a", "T")
    inst, k1, k2 = two_key_values(two_relation_schema, vary)
    assert k1 != k2
    assert inst.column(vary) == frozenset({k1, k2})


def test_g_swap_swaps_and_fixes(two_relation_schema):
    vary = QualifiedAttribute("R", "a", "T")
    inst, k1, k2 = two_key_values(two_relation_schema, vary)
    swapped = g_swap(inst, k1, k2)
    # The varied column still holds {k1, k2}; everything else unchanged.
    assert swapped.column(vary) == frozenset({k1, k2})
    assert swapped.relation("S") == inst.relation("S")
    # g is an involution.
    assert g_swap(swapped, k1, k2) == inst


def test_random_instance_satisfies_keys(two_relation_schema):
    for seed in range(5):
        inst = random_instance(two_relation_schema, rows_per_relation=8, seed=seed)
        assert inst.satisfies_keys()


def test_random_instance_is_deterministic(two_relation_schema):
    a = random_instance(two_relation_schema, rows_per_relation=5, seed=42)
    b = random_instance(two_relation_schema, rows_per_relation=5, seed=42)
    assert a == b


def test_random_instance_per_relation_sizes(two_relation_schema):
    inst = random_instance(
        two_relation_schema, rows_per_relation={"R": 2, "S": 6}, seed=1
    )
    assert len(inst.relation("R")) == 2
    assert len(inst.relation("S")) == 6


def test_empty_and_single_tuple(two_relation_schema):
    assert empty_instance(two_relation_schema).is_empty()
    single = single_tuple_instance(two_relation_schema)
    assert all(len(r) == 1 for r in single)
    assert single.is_attribute_specific()
