"""Unit tests for relation and database instances."""

import pytest

from repro.errors import InstanceError, TypeMismatchError
from repro.relational.attribute import QualifiedAttribute
from repro.relational.catalog import relation, schema
from repro.relational.domain import Value
from repro.relational.instance import DatabaseInstance, RelationInstance


@pytest.fixture
def rel():
    return relation("R", [("a", "T"), ("b", "U")], key=["a"])


def rows(*pairs):
    return [(Value("T", a), Value("U", b)) for a, b in pairs]


def test_relation_instance_holds_rows(rel):
    inst = RelationInstance(rel, rows((1, 10), (2, 20)))
    assert len(inst) == 2
    assert (Value("T", 1), Value("U", 10)) in inst
    assert not inst.is_empty()


def test_relation_instance_rejects_wrong_arity(rel):
    with pytest.raises(InstanceError):
        RelationInstance(rel, [(Value("T", 1),)])


def test_relation_instance_rejects_wrong_type(rel):
    with pytest.raises(TypeMismatchError):
        RelationInstance(rel, [(Value("U", 1), Value("U", 2))])


def test_column_projection(rel):
    inst = RelationInstance(rel, rows((1, 10), (2, 10)))
    assert inst.column("b") == frozenset({Value("U", 10)})
    assert inst.project(["b", "a"]) == frozenset(
        {(Value("U", 10), Value("T", 1)), (Value("U", 10), Value("T", 2))}
    )


def test_satisfies_key(rel):
    good = RelationInstance(rel, rows((1, 10), (2, 10)))
    assert good.satisfies_key()
    # Same key value, different non-key: violation.
    bad = RelationInstance(rel, rows((1, 10), (1, 20)))
    assert not bad.satisfies_key()


def test_unkeyed_relation_always_satisfies_key():
    unkeyed = relation("R", [("a", "T"), ("b", "U")])
    inst = RelationInstance(unkeyed, rows((1, 10), (1, 20)))
    assert inst.satisfies_key()


def test_key_projection(rel):
    inst = RelationInstance(rel, rows((1, 10), (2, 20)))
    kappa = inst.key_projection()
    assert kappa.schema.arity == 1
    assert kappa.rows == frozenset({(Value("T", 1),), (Value("T", 2),)})


def test_with_rows_and_map_rows(rel):
    inst = RelationInstance(rel, rows((1, 10)))
    extended = inst.with_rows(rows((2, 20)))
    assert len(extended) == 2 and len(inst) == 1
    doubled = inst.map_rows(
        lambda row: (Value("T", row[0].token * 2), row[1])
    )
    assert (Value("T", 2), Value("U", 10)) in doubled


def test_database_instance_fills_missing_relations(rel):
    s = schema(rel, relation("S", [("c", "T")], key=["c"]))
    inst = DatabaseInstance(s)
    assert inst.relation("S").is_empty()
    assert inst.is_empty()
    assert not inst.all_nonempty()


def test_database_instance_rejects_unknown_relation(rel):
    s = schema(rel)
    other = relation("X", [("a", "T")], key=["a"])
    with pytest.raises(InstanceError):
        DatabaseInstance(s, {"X": RelationInstance(other)})


def test_database_instance_rejects_mismatched_schema(rel):
    s = schema(rel)
    wrong = relation("R", [("a", "T")], key=["a"])
    with pytest.raises(InstanceError):
        DatabaseInstance(s, {"R": RelationInstance(wrong)})


def test_from_rows_and_total(rel):
    s = schema(rel)
    inst = DatabaseInstance.from_rows(s, {"R": rows((1, 10), (2, 20))})
    assert inst.total_rows() == 2
    assert inst.satisfies_keys()


def test_with_relation_replaces(rel):
    s = schema(rel)
    inst = DatabaseInstance(s)
    updated = inst.with_relation(RelationInstance(rel, rows((5, 50))))
    assert updated.total_rows() == 1 and inst.total_rows() == 0


def test_attribute_specific_detection(rel):
    s = schema(rel, relation("S", [("c", "T")], key=["c"]))
    shared = DatabaseInstance.from_rows(
        s, {"R": rows((1, 10)), "S": [(Value("T", 1),)]}
    )
    assert not shared.is_attribute_specific()  # value 1 in R.a and S.c
    disjoint = DatabaseInstance.from_rows(
        s, {"R": rows((1, 10)), "S": [(Value("T", 2),)]}
    )
    assert disjoint.is_attribute_specific()


def test_column_by_qualified_attribute(rel):
    s = schema(rel)
    inst = DatabaseInstance.from_rows(s, {"R": rows((1, 10))})
    assert inst.column(QualifiedAttribute("R", "a", "T")) == frozenset(
        {Value("T", 1)}
    )


def test_database_key_projection(rel):
    s = schema(rel)
    inst = DatabaseInstance.from_rows(s, {"R": rows((1, 10), (2, 20))})
    kappa = inst.key_projection()
    assert kappa.schema.relation("R").arity == 1
    assert kappa.relation("R").rows == frozenset(
        {(Value("T", 1),), (Value("T", 2),)}
    )


def test_values_union(rel):
    s = schema(rel)
    inst = DatabaseInstance.from_rows(s, {"R": rows((1, 10))})
    assert inst.values() == frozenset({Value("T", 1), Value("U", 10)})
