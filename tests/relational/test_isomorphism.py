"""Unit tests for schema isomorphism ("identical up to renaming/re-ordering")."""

import pytest

from repro.errors import SchemaError
from repro.relational import (
    Value,
    canonical_form,
    explain_difference,
    find_isomorphism,
    is_isomorphic,
    parse_schema,
    random_instance,
    relation,
    schema,
)
from repro.workloads import random_keyed_schema, shuffled_copy


def test_identical_schemas_are_isomorphic(isomorphic_pair):
    s1, _ = isomorphic_pair
    assert is_isomorphic(s1, s1)


def test_renamed_reordered_schemas_are_isomorphic(isomorphic_pair):
    s1, s2 = isomorphic_pair
    assert is_isomorphic(s1, s2)
    witness = find_isomorphism(s1, s2)
    assert witness is not None and witness.verify()


def test_key_placement_matters():
    s1, _ = parse_schema("R(a*: T, b: T)")
    s2, _ = parse_schema("R(a*: T, b*: T)")
    assert not is_isomorphic(s1, s2)


def test_type_counts_matter(non_isomorphic_pair):
    s1, s2 = non_isomorphic_pair
    assert not is_isomorphic(s1, s2)
    assert find_isomorphism(s1, s2) is None


def test_relation_count_matters():
    s1, _ = parse_schema("R(a*: T)")
    s2, _ = parse_schema("R(a*: T)\nS(b*: T)")
    assert not is_isomorphic(s1, s2)
    assert "relation counts" in explain_difference(s1, s2)


def test_keyed_vs_unkeyed_never_isomorphic():
    keyed = schema(relation("R", [("a", "T")], key=["a"]))
    unkeyed = schema(relation("R", [("a", "T")]))
    assert not is_isomorphic(keyed, unkeyed)


def test_canonical_form_agrees_with_witness_search():
    for seed in range(15):
        s1 = random_keyed_schema(seed, ["A", "B"], n_relations=2, max_arity=3)
        s2 = random_keyed_schema(seed + 100, ["A", "B"], n_relations=2, max_arity=3)
        assert (canonical_form(s1) == canonical_form(s2)) == (
            find_isomorphism(s1, s2) is not None
        )


def test_shuffled_copy_is_isomorphic():
    for seed in range(10):
        original = random_keyed_schema(seed, ["A", "B", "C"], n_relations=3)
        copy = shuffled_copy(original, seed=seed + 1)
        witness = find_isomorphism(original, copy)
        assert witness is not None and witness.verify()


def test_witness_inverse_verifies(isomorphic_pair):
    s1, s2 = isomorphic_pair
    witness = find_isomorphism(s1, s2)
    assert witness.inverse().verify()


def test_transport_instance_preserves_keys(isomorphic_pair):
    s1, s2 = isomorphic_pair
    witness = find_isomorphism(s1, s2)
    instance = random_instance(s1, rows_per_relation=4, seed=5)
    transported = witness.transport_instance(instance)
    assert transported.schema == s2
    assert transported.total_rows() == instance.total_rows()
    assert transported.satisfies_keys() == instance.satisfies_keys()


def test_transport_rejects_foreign_instance(isomorphic_pair):
    s1, s2 = isomorphic_pair
    witness = find_isomorphism(s1, s2)
    foreign = random_instance(s2, rows_per_relation=2, seed=0)
    with pytest.raises(SchemaError):
        witness.transport_instance(foreign)


def test_transport_round_trip(isomorphic_pair):
    s1, s2 = isomorphic_pair
    witness = find_isomorphism(s1, s2)
    instance = random_instance(s1, rows_per_relation=3, seed=9)
    back = witness.inverse().transport_instance(witness.transport_instance(instance))
    assert back == instance


def test_explain_difference_empty_for_isomorphic(isomorphic_pair):
    s1, s2 = isomorphic_pair
    assert explain_difference(s1, s2) == ""


def test_explain_difference_mentions_signatures(non_isomorphic_pair):
    s1, s2 = non_isomorphic_pair
    assert "signature" in explain_difference(s1, s2)
