"""Unit tests for relation schemes and database schemas."""

import pytest

from repro.errors import SchemaError
from repro.relational.attribute import Attribute, QualifiedAttribute
from repro.relational.schema import DatabaseSchema, RelationSchema


def make_rel(key=("a",)):
    return RelationSchema(
        "R", [Attribute("a", "T"), Attribute("b", "U"), Attribute("c", "T")], key
    )


def test_basic_properties():
    rel = make_rel()
    assert rel.name == "R"
    assert rel.arity == 3
    assert rel.type_signature == ("T", "U", "T")
    assert rel.is_keyed
    assert rel.key == frozenset({"a"})


def test_duplicate_attribute_names_rejected():
    with pytest.raises(SchemaError):
        RelationSchema("R", [Attribute("a", "T"), Attribute("a", "U")])


def test_empty_attribute_list_rejected():
    with pytest.raises(SchemaError):
        RelationSchema("R", [])


def test_key_must_be_subset():
    with pytest.raises(SchemaError):
        make_rel(key=("z",))


def test_empty_key_rejected():
    with pytest.raises(SchemaError):
        make_rel(key=())


def test_unkeyed_relation():
    rel = RelationSchema("R", [Attribute("a", "T")], None)
    assert not rel.is_keyed
    assert rel.key_positions() == ()
    assert rel.nonkey_positions() == (0,)


def test_positions_and_lookup():
    rel = make_rel(key=("a", "c"))
    assert rel.position("b") == 1
    assert rel.key_positions() == (0, 2)
    assert rel.nonkey_positions() == (1,)
    assert [a.name for a in rel.key_attributes()] == ["a", "c"]
    assert [a.name for a in rel.nonkey_attributes()] == ["b"]
    with pytest.raises(SchemaError):
        rel.position("nope")


def test_qualified_attributes():
    rel = make_rel()
    qualified = rel.qualified()
    assert qualified[0] == QualifiedAttribute("R", "a", "T")
    assert rel.qualify("b") == QualifiedAttribute("R", "b", "U")


def test_renamed_and_reordered():
    rel = make_rel()
    renamed = rel.renamed("S")
    assert renamed.name == "S" and renamed.attributes == rel.attributes
    reordered = rel.reordered(["c", "a", "b"])
    assert [a.name for a in reordered.attributes] == ["c", "a", "b"]
    assert reordered.key == rel.key
    with pytest.raises(SchemaError):
        rel.reordered(["a", "b"])


def test_with_attributes_renamed_updates_key():
    rel = make_rel()
    renamed = rel.with_attributes_renamed({"a": "id"})
    assert renamed.key == frozenset({"id"})
    assert renamed.attribute("id").type_name == "T"


def test_key_projection():
    rel = make_rel(key=("a", "c"))
    kappa = rel.key_projection()
    assert [a.name for a in kappa.attributes] == ["a", "c"]
    assert kappa.key is None
    unkeyed = rel.unkeyed()
    with pytest.raises(SchemaError):
        unkeyed.key_projection()


def test_database_schema_basics():
    s = DatabaseSchema([make_rel(), make_rel().renamed("S")])
    assert len(s) == 2
    assert s.relation_names == ("R", "S")
    assert s.has_relation("R") and not s.has_relation("X")
    assert "R" in s
    with pytest.raises(SchemaError):
        s.relation("X")


def test_database_schema_duplicate_names_rejected():
    with pytest.raises(SchemaError):
        DatabaseSchema([make_rel(), make_rel()])


def test_database_schema_empty_rejected():
    with pytest.raises(SchemaError):
        DatabaseSchema([])


def test_keyed_unkeyed_flags():
    keyed = DatabaseSchema([make_rel()])
    assert keyed.is_keyed and not keyed.is_unkeyed
    unkeyed = keyed.unkeyed()
    assert unkeyed.is_unkeyed and not unkeyed.is_keyed


def test_type_counts():
    s = DatabaseSchema([make_rel()])
    assert s.type_count("T") == 2
    assert s.type_count("U") == 1
    assert s.type_names() == ("T", "U")


def test_qualified_attribute_partition():
    s = DatabaseSchema([make_rel(key=("a",))])
    keys = s.key_qualified_attributes()
    nonkeys = s.nonkey_qualified_attributes()
    assert {q.attribute for q in keys} == {"a"}
    assert {q.attribute for q in nonkeys} == {"b", "c"}
    assert set(keys) | set(nonkeys) == set(s.qualified_attributes())


def test_with_relation_replaced():
    s = DatabaseSchema([make_rel()])
    replaced = s.with_relation_replaced(make_rel(key=("b",)))
    assert replaced.relation("R").key == frozenset({"b"})
    with pytest.raises(SchemaError):
        s.with_relation_replaced(make_rel().renamed("Z"))
