"""Shared hygiene for the resilience suite.

Fault plans ride on a process-global *and* an environment variable, and
deadline scopes live on a module-global stack — a test that leaks either
would corrupt every test after it.  The autouse fixture guarantees both
are clean on the way in and on the way out.
"""

import pytest

from repro.obs import events
from repro.resilience import deadline as deadline_mod
from repro.resilience import faults


@pytest.fixture(autouse=True)
def _clean_resilience_state():
    faults.clear()
    events.drain_incidents()
    assert deadline_mod.active_deadlines() == ()
    yield
    faults.clear()
    # Incidents are process-global; leaking them would pollute the next
    # trace-writing test's event stream.
    events.drain_incidents()
    assert deadline_mod.active_deadlines() == ()
