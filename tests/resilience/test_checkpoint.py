"""Unit tests for JSONL checkpoints (:mod:`repro.resilience.checkpoint`)."""

import json

import pytest

from repro.errors import CheckpointError
from repro.resilience import CHECKPOINT_VERSION, ScanCheckpoint

FP = {"kind": "test", "max_atoms": 1}


def test_fresh_checkpoint_writes_header(tmp_path):
    path = tmp_path / "ck.jsonl"
    with ScanCheckpoint.open(path, FP) as ck:
        assert len(ck) == 0
    lines = path.read_text().splitlines()
    header = json.loads(lines[0])
    assert header == {"v": CHECKPOINT_VERSION, "kind": "header", "fingerprint": FP}


def test_record_get_and_replay(tmp_path):
    path = tmp_path / "ck.jsonl"
    with ScanCheckpoint.open(path, FP) as ck:
        ck.record((0, 1), {"found": True})
        ck.record(7, {"found": False})
        assert ck.get((0, 1)) == {"found": True}
        assert ck.get(7) == {"found": False}  # int keys normalise to (7,)
        assert ck.get((9, 9)) is None
        assert len(ck) == 2
    with ScanCheckpoint.open(path, FP, resume=True) as resumed:
        assert len(resumed) == 2
        assert resumed.get((0, 1)) == {"found": True}
        assert tuple(resumed.done_keys()) == ((0, 1), (7,))


def test_duplicate_record_is_idempotent(tmp_path):
    path = tmp_path / "ck.jsonl"
    with ScanCheckpoint.open(path, FP) as ck:
        ck.record((0,), {"x": 1})
        ck.record((0,), {"x": 999})  # ignored: the unit already completed
        assert ck.get(0) == {"x": 1}
    assert len(path.read_text().splitlines()) == 2  # header + one cell


def test_open_without_resume_truncates(tmp_path):
    path = tmp_path / "ck.jsonl"
    with ScanCheckpoint.open(path, FP) as ck:
        ck.record((0,), {"x": 1})
    with ScanCheckpoint.open(path, FP) as fresh:
        assert len(fresh) == 0
    assert len(path.read_text().splitlines()) == 1  # header only


def test_resume_missing_file_starts_fresh(tmp_path):
    path = tmp_path / "absent.jsonl"
    with ScanCheckpoint.open(path, FP, resume=True) as ck:
        assert len(ck) == 0
    assert path.exists()


def test_fingerprint_mismatch_refuses_resume(tmp_path):
    path = tmp_path / "ck.jsonl"
    ScanCheckpoint.open(path, FP).close()
    with pytest.raises(CheckpointError, match="different scan configuration"):
        ScanCheckpoint.open(path, {"kind": "test", "max_atoms": 2}, resume=True)


def test_torn_final_line_is_dropped(tmp_path):
    path = tmp_path / "ck.jsonl"
    with ScanCheckpoint.open(path, FP) as ck:
        ck.record((0,), {"x": 1})
    with path.open("a", encoding="utf-8") as handle:
        handle.write('{"v": 1, "kind": "cell", "key": [1], "da')  # killed mid-write
    with ScanCheckpoint.open(path, FP, resume=True) as resumed:
        assert len(resumed) == 1
        assert resumed.get((1,)) is None


def test_corruption_before_the_end_is_an_error(tmp_path):
    path = tmp_path / "ck.jsonl"
    with ScanCheckpoint.open(path, FP) as ck:
        ck.record((0,), {"x": 1})
    text = path.read_text().splitlines()
    text[1] = "not json at all"
    path.write_text("\n".join(text + ['{"v": 1, "kind": "cell", "key": [2], "data": {}}']) + "\n")
    with pytest.raises(CheckpointError, match="corrupt"):
        ScanCheckpoint.open(path, FP, resume=True)


def test_missing_header_is_an_error(tmp_path):
    path = tmp_path / "ck.jsonl"
    path.write_text('{"v": 1, "kind": "cell", "key": [0], "data": {}}\n')
    with pytest.raises(CheckpointError, match="header"):
        ScanCheckpoint.open(path, FP, resume=True)


def test_version_mismatch_is_an_error(tmp_path):
    path = tmp_path / "ck.jsonl"
    path.write_text(
        json.dumps({"v": 999, "kind": "header", "fingerprint": FP}) + "\n"
    )
    with pytest.raises(CheckpointError, match="version"):
        ScanCheckpoint.open(path, FP, resume=True)


def test_records_are_flushed_as_written(tmp_path):
    # The journal must be durable per unit: a reader sees a completed cell
    # before the checkpoint is closed (this is what crash recovery relies on).
    path = tmp_path / "ck.jsonl"
    ck = ScanCheckpoint.open(path, FP)
    try:
        ck.record((3, 4), {"found": True})
        on_disk = path.read_text().splitlines()
        assert len(on_disk) == 2
        assert json.loads(on_disk[1])["key"] == [3, 4]
    finally:
        ck.close()


def test_durable_checkpoint_fsyncs_header_and_records(tmp_path, monkeypatch):
    import os as os_mod

    synced = []
    real_fsync = os_mod.fsync

    def counting_fsync(fd):
        synced.append(fd)
        real_fsync(fd)

    monkeypatch.setattr(
        "repro.resilience.checkpoint.os.fsync", counting_fsync
    )
    path = tmp_path / "ck.jsonl"
    with ScanCheckpoint.open(path, FP, durable=True) as ck:
        assert len(synced) == 1  # the header
        ck.record((0, 1), {"found": True})
        assert len(synced) == 2
        ck.record((0, 2), {"found": False})
        assert len(synced) == 3
        ck.record((0, 1), {"found": True})  # duplicate: no new write
        assert len(synced) == 3


def test_default_checkpoint_never_fsyncs(tmp_path, monkeypatch):
    def forbidden_fsync(fd):
        raise AssertionError("non-durable checkpoint must not fsync")

    monkeypatch.setattr(
        "repro.resilience.checkpoint.os.fsync", forbidden_fsync
    )
    path = tmp_path / "ck.jsonl"
    with ScanCheckpoint.open(path, FP) as ck:
        ck.record((0, 1), {"found": True})
    assert len(path.read_text().splitlines()) == 2


def test_durable_survives_resume_round_trip(tmp_path):
    path = tmp_path / "ck.jsonl"
    with ScanCheckpoint.open(path, FP, durable=True) as ck:
        ck.record((1, 2), {"found": True})
    with ScanCheckpoint.open(path, FP, resume=True, durable=True) as ck:
        assert ck.get((1, 2)) == {"found": True}


def test_read_journal_round_trip(tmp_path):
    from repro.resilience.checkpoint import read_journal

    path = tmp_path / "ck.jsonl"
    with ScanCheckpoint.open(path, FP) as ck:
        ck.record((0, 1), {"found": True})
        ck.record((2, 3), {"found": False})
    fingerprint, done = read_journal(path, FP)
    assert fingerprint == FP
    assert done == {(0, 1): {"found": True}, (2, 3): {"found": False}}


def test_read_journal_tolerates_torn_tail_only(tmp_path):
    from repro.resilience.checkpoint import read_journal

    path = tmp_path / "ck.jsonl"
    with ScanCheckpoint.open(path, FP) as ck:
        ck.record((0, 1), {"found": True})
    with path.open("a") as handle:
        handle.write('{"v": 1, "kind": "cell", "key": [9')  # torn
    _, done = read_journal(path)
    assert done == {(0, 1): {"found": True}}


def test_read_journal_rejects_conflicting_duplicates(tmp_path):
    from repro.resilience.checkpoint import read_journal

    path = tmp_path / "ck.jsonl"
    with ScanCheckpoint.open(path, FP) as ck:
        ck.record((0, 1), {"found": True})
    line = json.dumps(
        {"v": CHECKPOINT_VERSION, "kind": "cell", "key": [0, 1],
         "data": {"found": False}}
    )
    with path.open("a") as handle:
        handle.write(line + "\n" + "\n")  # conflicting dup + padding line
    with pytest.raises(CheckpointError, match="conflicting records"):
        read_journal(path)


def test_read_journal_accepts_identical_duplicates(tmp_path):
    from repro.resilience.checkpoint import read_journal

    path = tmp_path / "ck.jsonl"
    with ScanCheckpoint.open(path, FP) as ck:
        ck.record((0, 1), {"found": True})
    line = json.dumps(
        {"v": CHECKPOINT_VERSION, "kind": "cell", "key": [0, 1],
         "data": {"found": True}}
    )
    with path.open("a") as handle:
        handle.write(line + "\n" + "\n")
    _, done = read_journal(path)
    assert done == {(0, 1): {"found": True}}


def test_read_journal_verifies_fingerprint(tmp_path):
    from repro.resilience.checkpoint import read_journal

    path = tmp_path / "ck.jsonl"
    with ScanCheckpoint.open(path, FP) as ck:
        ck.record((0, 1), {"found": True})
    with pytest.raises(CheckpointError, match="different scan configuration"):
        read_journal(path, {"kind": "other"})
