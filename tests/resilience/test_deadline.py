"""Unit tests for cooperative deadlines (:mod:`repro.resilience.deadline`)."""

import pytest

from repro.errors import DeadlineExceeded
from repro.resilience import (
    Deadline,
    active_deadlines,
    as_deadline,
    deadline_scope,
    poll,
)


def test_unbounded_deadline_never_expires():
    dl = Deadline(None)
    assert dl.remaining() is None
    assert not dl.expired()
    dl.check()  # no-op


def test_zero_budget_expires_immediately():
    dl = Deadline(0.0, label="pair")
    assert dl.expired()
    assert dl.remaining() == 0.0
    with pytest.raises(DeadlineExceeded) as excinfo:
        dl.check()
    assert excinfo.value.deadline is dl
    assert "pair" in str(excinfo.value)


def test_negative_budget_rejected():
    with pytest.raises(ValueError):
        Deadline(-1.0)


def test_as_deadline_coercions():
    assert as_deadline(None) is None
    dl = Deadline(5.0)
    assert as_deadline(dl) is dl  # existing deadlines pass through (shared budgets)
    coerced = as_deadline(2, label="scan")
    assert isinstance(coerced, Deadline)
    assert coerced.budget == 2.0
    assert coerced.label == "scan"


def test_poll_without_scope_is_a_no_op():
    assert active_deadlines() == ()
    poll()  # must not raise


def test_scope_arms_poll_and_cleans_up():
    with deadline_scope(0.0, label="scan") as dl:
        assert active_deadlines() == (dl,)
        with pytest.raises(DeadlineExceeded) as excinfo:
            poll()
        assert excinfo.value.deadline is dl
    assert active_deadlines() == ()


def test_scope_cleans_up_on_exception():
    with pytest.raises(RuntimeError):
        with deadline_scope(10.0):
            raise RuntimeError("boom")
    assert active_deadlines() == ()


def test_none_scope_is_transparent():
    with deadline_scope(None) as dl:
        assert dl is None
        assert active_deadlines() == ()
        poll()


def test_outermost_expired_scope_wins():
    # A dead whole-scan budget beats a dead per-pair budget: the scan
    # handler must see its own deadline even when the inner one also
    # expired, so the scan stops instead of timing out pair after pair.
    with deadline_scope(0.0, label="scan") as outer:
        with deadline_scope(0.0, label="pair") as inner:
            with pytest.raises(DeadlineExceeded) as excinfo:
                poll()
            assert excinfo.value.deadline is outer
            assert excinfo.value.deadline is not inner


def test_inner_expiry_with_live_outer():
    with deadline_scope(60.0, label="scan"):
        with deadline_scope(0.0, label="pair") as inner:
            with pytest.raises(DeadlineExceeded) as excinfo:
                poll()
            assert excinfo.value.deadline is inner


def test_check_counts_timeouts_by_label():
    from repro.obs import metrics

    registry = metrics.registry()
    before = registry.snapshot().get("resilience.timeouts.t-label", 0)
    dl = Deadline(0.0, label="t-label")
    for _ in range(2):
        with pytest.raises(DeadlineExceeded):
            dl.check()
    after = registry.snapshot()["resilience.timeouts.t-label"]
    assert after == before + 2


def test_reentering_a_shared_deadline_is_safe():
    # search_dominance re-opens the scan deadline it inherited when the
    # in-process fallback runs a chunk; the double push must not wedge
    # the stack.
    dl = Deadline(30.0, label="scan")
    with deadline_scope(dl) as outer:
        assert outer is dl
        with deadline_scope(dl) as again:
            assert again is dl
            assert active_deadlines() == (dl, dl)
        assert active_deadlines() == (dl,)
    assert active_deadlines() == ()


def test_deadline_scopes_are_thread_local():
    """A thread's expired budget must never time out its neighbours.

    The service runs one request per worker thread, each under its own
    deadline scope; before the stack went thread-local, any thread's
    poll() walked every open scope in the process.
    """
    import threading

    started = threading.Event()
    release = threading.Event()
    errors = []

    def victim():
        try:
            started.set()
            release.wait(timeout=10)
            # This thread opened no scope: poll must be a no-op even
            # while another thread sits inside an expired scope.
            assert active_deadlines() == ()
            poll()
        except Exception as exc:  # pragma: no cover - only on regression
            errors.append(exc)

    with deadline_scope(0.0, label="other-request"):
        assert active_deadlines() != ()
        thread = threading.Thread(target=victim)
        thread.start()
        started.wait(timeout=10)
        release.set()
        thread.join(timeout=10)
        # ... and this thread still sees — and trips over — its own.
        with pytest.raises(DeadlineExceeded):
            poll()
    assert errors == []


def test_concurrent_scopes_expire_independently():
    import threading

    outcomes = {}

    def request(name, budget):
        with deadline_scope(budget, label=name) as scope:
            try:
                poll()
                outcomes[name] = "ok"
            except DeadlineExceeded as exc:
                assert exc.deadline is scope
                outcomes[name] = "timeout"

    threads = [
        threading.Thread(target=request, args=("fast", 0.0)),
        threading.Thread(target=request, args=("slow", 60.0)),
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=10)
    assert outcomes == {"fast": "timeout", "slow": "ok"}
