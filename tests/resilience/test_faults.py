"""Unit tests for deterministic fault injection (:mod:`repro.resilience.faults`)."""

import os

import pytest

from repro.errors import InjectedFault
from repro.resilience import FaultPlan, faults, install, rule
from repro.resilience.faults import ENV_VAR


def test_rule_builder_normalises_and_validates():
    r = rule("scan.cell", "raise", keys=[3, "0,1"], attempts=[0, 1])
    assert r.keys == ("3", "0,1")
    assert r.attempts == (0, 1)
    with pytest.raises(ValueError, match="unknown fault action"):
        rule("scan.cell", "explode")


def test_rule_matching_filters():
    r = rule("scan.cell", "raise", keys=["0,1"], attempts=[0])
    assert r.matches("scan.cell", "0,1", 0)
    assert not r.matches("scan.cell", "0,1", 1)  # retry spared
    assert not r.matches("scan.cell", "2,2", 0)  # other key
    assert not r.matches("chase.round", "0,1", 0)  # other site
    wildcard = rule("chase.round", "delay")
    assert wildcard.matches("chase.round", None, None)


def test_fire_without_plan_is_a_no_op():
    faults.fire("scan.cell", key="0,0", attempt=0)


def test_raise_action_raises_injected_fault():
    install([rule("scan.cell", "raise")])
    with pytest.raises(InjectedFault):
        faults.fire("scan.cell", key="0,0", attempt=0)


def test_interrupt_action_simulates_ctrl_c():
    install([rule("scan.cell.done", "interrupt")])
    with pytest.raises(KeyboardInterrupt):
        faults.fire("scan.cell.done")


def test_kill_is_a_no_op_in_the_installing_process():
    # A kill rule matching in the driver itself must not take the test
    # harness down with it.
    install([rule("search.chunk", "kill")])
    faults.fire("search.chunk", key=0, attempt=0)  # still alive


def test_max_fires_caps_per_process():
    install([rule("scan.cell", "raise", max_fires=1)])
    with pytest.raises(InjectedFault):
        faults.fire("scan.cell")
    faults.fire("scan.cell")  # disarmed


def test_probability_stream_is_deterministic():
    def outcomes(seed):
        plan = FaultPlan([rule("scan.cell", "raise", probability=0.5)], seed=seed)
        return [
            plan.match("scan.cell", None, None) is not None for _ in range(16)
        ]

    assert outcomes(7) == outcomes(7)
    assert True in outcomes(7) and False in outcomes(7)
    assert outcomes(7) != outcomes(8)  # the seed matters


def test_plan_round_trips_through_json():
    plan = FaultPlan(
        [rule("search.chunk", "kill", keys=[1], attempts=[0], max_fires=2)],
        seed=42,
    )
    clone = FaultPlan.from_json(plan.as_json())
    assert clone.rules == plan.rules
    assert clone.seed == plan.seed
    assert clone.install_pid == plan.install_pid


def test_install_exports_to_environment_and_clear_removes():
    install([rule("scan.cell", "raise")], seed=3)
    assert ENV_VAR in os.environ
    decoded = FaultPlan.from_json(os.environ[ENV_VAR])
    assert decoded.rules[0].site == "scan.cell"
    faults.clear()
    assert ENV_VAR not in os.environ


def test_worker_lazily_decodes_plan_from_environment(monkeypatch):
    # Simulate a freshly spawned worker: module globals reset, env set.
    plan = FaultPlan([rule("chase.round", "raise")], seed=0, install_pid=0)
    monkeypatch.setenv(ENV_VAR, plan.as_json())
    monkeypatch.setattr(faults, "_plan", None)
    monkeypatch.setattr(faults, "_env_checked", False)
    active = faults.active_plan()
    assert active is not None
    assert active.rules[0].site == "chase.round"
    assert active.install_pid == 0


def test_fired_faults_are_counted_and_recorded():
    from repro.obs import events, metrics

    events.drain_incidents()  # start clean
    before = metrics.registry().snapshot().get("resilience.faults_injected", 0)
    install([rule("scan.cell", "delay", delay=0.0)])
    faults.fire("scan.cell", key="1,2", attempt=1)
    after = metrics.registry().snapshot()["resilience.faults_injected"]
    assert after == before + 1
    incidents = events.drain_incidents()
    assert any(
        e["type"] == "fault" and e["site"] == "scan.cell" and e["key"] == "1,2"
        for e in incidents
    )
