"""Unit tests for crash-tolerant mapping (:mod:`repro.resilience.retry`).

Worker callables live at module level so they pickle into the pool; every
payload is ``(index, attempt)`` so a worker can behave differently on a
retry — the same mechanism the deterministic fault rules rely on.
"""

import os

import pytest

from repro.obs import metrics
from repro.resilience import RetryPolicy, resilient_map

FAST = RetryPolicy(max_attempts=3, base_delay=0.01, max_delay=0.05)


def _payload(index, attempt):
    return (index, attempt)


def _double(payload):
    index, _attempt = payload
    return index * 2


def _flaky(payload):
    index, attempt = payload
    if attempt == 0:
        raise RuntimeError(f"flaky first try for item {index}")
    return index


def _die_first(payload):
    index, attempt = payload
    if index == 0 and attempt == 0:
        os._exit(86)  # simulated OOM kill: breaks the whole pool
    return index + 100


def _always_raises(payload):
    raise RuntimeError("this worker never succeeds in a pool")


def _inline_ok(payload):
    index, _attempt = payload
    return ("inline", index)


def _counter(name):
    return metrics.registry().snapshot().get(name, 0)


def test_happy_path_maps_all_items():
    result = resilient_map(_double, 4, _payload, n_workers=2, policy=FAST)
    assert result.results == [0, 2, 4, 6]
    assert result.incomplete == ()
    assert result.complete


def test_zero_items_is_trivially_complete():
    result = resilient_map(_double, 0, _payload, n_workers=2, policy=FAST)
    assert result.results == []
    assert result.complete


def test_per_item_exception_retries_with_bumped_attempt():
    retries_before = _counter("resilience.retries")
    result = resilient_map(_flaky, 3, _payload, n_workers=2, policy=FAST)
    assert result.results == [0, 1, 2]
    assert result.complete
    assert _counter("resilience.retries") >= retries_before + 3


def test_broken_pool_is_rebuilt_and_pending_items_resubmitted():
    crashes_before = _counter("resilience.worker_crashes")
    result = resilient_map(_die_first, 3, _payload, n_workers=2, policy=FAST)
    assert result.complete
    assert result.results == [100, 101, 102]
    assert _counter("resilience.worker_crashes") > crashes_before


def test_inline_fallback_after_pool_attempts_exhausted():
    fallbacks_before = _counter("resilience.fallbacks")
    result = resilient_map(
        _always_raises,
        2,
        _payload,
        n_workers=2,
        policy=RetryPolicy(max_attempts=1, base_delay=0.01, max_delay=0.02),
        inline_fn=_inline_ok,
    )
    assert result.complete
    assert result.results == [("inline", 0), ("inline", 1)]
    assert _counter("resilience.fallbacks") == fallbacks_before + 2


def test_expired_deadline_reports_incomplete_indices():
    from repro.resilience import Deadline

    result = resilient_map(
        _double, 3, _payload, n_workers=2, policy=FAST, deadline=Deadline(0.0)
    )
    assert result.results == [None, None, None]
    assert result.incomplete == (0, 1, 2)
    assert not result.complete


def test_on_result_sees_each_item_exactly_once():
    seen = {}

    def on_result(index, value):
        assert index not in seen
        seen[index] = value

    result = resilient_map(
        _flaky, 3, _payload, n_workers=2, policy=FAST, on_result=on_result
    )
    assert result.complete
    assert seen == {0: 0, 1: 1, 2: 2}


def test_keyboard_interrupt_propagates():
    def on_result(index, value):
        raise KeyboardInterrupt

    with pytest.raises(KeyboardInterrupt):
        resilient_map(
            _double, 2, _payload, n_workers=2, policy=FAST, on_result=on_result
        )


def _inline_interrupt(payload):
    raise KeyboardInterrupt


ONE_SHOT = RetryPolicy(max_attempts=1, base_delay=0.01, max_delay=0.02)


def test_interrupt_during_inline_fallback_reraises_promptly():
    # Regression: a Ctrl-C on the in-process fallback path must re-raise
    # immediately — never be absorbed as a retry attempt or folded into
    # another pool round — with an "interrupted" retry event recorded.
    from repro.obs import events

    events.drain_incidents()
    with pytest.raises(KeyboardInterrupt):
        resilient_map(
            _always_raises, 3, _payload, n_workers=2, policy=ONE_SHOT,
            inline_fn=_inline_interrupt,
        )
    incidents = events.drain_incidents()
    interrupted = [
        e for e in incidents
        if e.get("type") == "retry" and e.get("kind") == "interrupted"
    ]
    # Exactly one: the interrupt stopped the fallback loop at its first
    # item instead of marching through the remaining two.
    assert len(interrupted) == 1


def test_injected_interrupt_at_inline_fault_site_propagates():
    # The parent-side retry.inline site lets tests land the interrupt
    # exactly between fallback items; nothing may swallow it.
    from repro.resilience import faults, install, rule

    install([rule("retry.inline", "interrupt", max_fires=1)])
    try:
        with pytest.raises(KeyboardInterrupt):
            resilient_map(
                _always_raises, 2, _payload, n_workers=2, policy=ONE_SHOT,
                inline_fn=_inline_ok,
            )
    finally:
        faults.clear()


def test_inline_fallback_still_completes_after_interrupt_rerun():
    # Delivered-results-stay-delivered: results finished before the
    # interrupt were handed to on_result, and a clean rerun completes.
    delivered = []
    with pytest.raises(KeyboardInterrupt):
        resilient_map(
            _always_raises, 2, _payload, n_workers=2, policy=ONE_SHOT,
            inline_fn=_inline_interrupt, on_result=lambda i, v: delivered.append(i),
        )
    assert delivered == []  # the interrupt hit the very first inline item
    result = resilient_map(
        _always_raises, 2, _payload, n_workers=2, policy=ONE_SHOT,
        inline_fn=_inline_ok,
    )
    assert result.complete
