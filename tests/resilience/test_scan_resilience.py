"""Acceptance tests: the search pipeline under injected faults.

These are the ISSUE's acceptance criteria, end to end:

* a fault plan killing one worker per first attempt still terminates
  ``theorem13_scan`` with verdicts identical to the fault-free run;
* a deadline-capped run returns partial results with explicit timeout
  verdicts instead of hanging;
* a ``KeyboardInterrupt`` mid-scan leaves a usable checkpoint, and
  ``--resume`` reproduces the uninterrupted report byte-for-byte
  (excluding perf lines).
"""

import os
import pathlib
import subprocess
import sys

import pytest

import repro

from repro.core.search import scan_fingerprint, search_dominance, theorem13_scan
from repro.obs import metrics
from repro.relational import parse_schema
from repro.resilience import (
    FaultPlan,
    RetryPolicy,
    ScanCheckpoint,
    faults,
    install,
    rule,
)
from repro.utils import memo

EMP = "emp(ss*: SSN, name: Name)"
PERSON = "person(id*: SSN, nm: Name)"
WIDE = "person(id*: SSN, nm: Name, extra: Name)"

FAST = RetryPolicy(max_attempts=3, base_delay=0.01, max_delay=0.05)


def _schema(text):
    return parse_schema(text)[0]


def _schemas():
    return [_schema(EMP), _schema(PERSON), _schema(WIDE)]


def _counter(name):
    return metrics.registry().snapshot().get(name, 0)


def test_worker_kill_per_round_reproduces_fault_free_verdicts():
    # Acceptance criterion 1: every first-attempt cell is OOM-killed
    # (attempts=(0,) spares the retries), yet the scan terminates with
    # the same rows as a clean run.
    schemas = _schemas()
    baseline = theorem13_scan(schemas, max_atoms=1, n_workers=2)
    crashes_before = _counter("resilience.worker_crashes")
    install([rule("scan.cell", "kill", attempts=[0])])
    faulted = theorem13_scan(
        schemas, max_atoms=1, n_workers=2, retry_policy=FAST
    )
    assert faulted == baseline
    assert all(row.consistent_with_theorem13 for row in faulted)
    assert _counter("resilience.worker_crashes") > crashes_before


def test_deadline_expires_mid_chase():
    # A chase round that sleeps past the whole-search budget must be
    # caught by the cooperative poll inside the chase loop, not hang:
    # the result comes back explicitly incomplete.
    memo.clear_all()  # cold caches so the chase actually runs
    install([rule("chase.round", "delay", delay=0.05, max_fires=2)])
    result = search_dominance(
        _schema(EMP), _schema(PERSON), max_atoms=1, deadline=0.04
    )
    assert not result.complete
    assert not result.found


def test_pair_deadline_times_out_individual_pairs():
    # A per-pair budget converts a slow pair check into a counted
    # timeout; the scan itself still runs to completion.
    memo.clear_all()
    install([rule("chase.round", "delay", delay=0.05, max_fires=3)])
    result = search_dominance(
        _schema(EMP), _schema(PERSON), max_atoms=1, pair_deadline=0.01
    )
    assert result.complete
    assert result.stats.pair_timeouts > 0


def test_sequential_deadline_zero_yields_explicit_timeout_rows():
    schemas = _schemas()
    rows = theorem13_scan(schemas, max_atoms=1, deadline=0.0)
    assert len(rows) == 6
    assert all(row.verdict == "timeout" for row in rows)
    # Undecided rows are vacuously consistent: no claim, no violation.
    assert all(row.consistent_with_theorem13 for row in rows)


def test_interrupt_leaves_checkpoint_and_resume_matches(tmp_path):
    # Acceptance criterion 3 (API level): Ctrl-C after the first settled
    # cell leaves a journal with that cell; resuming from it completes
    # the scan with verdicts identical to an uninterrupted run.
    schemas = _schemas()
    baseline = theorem13_scan(schemas, max_atoms=1, n_workers=2)
    path = tmp_path / "scan.jsonl"
    fingerprint = scan_fingerprint("theorem13", schemas, 1, None, None)

    install([rule("scan.cell.done", "interrupt", max_fires=1)])
    checkpoint = ScanCheckpoint.open(path, fingerprint)
    try:
        with pytest.raises(KeyboardInterrupt):
            theorem13_scan(
                schemas, max_atoms=1, n_workers=2,
                retry_policy=FAST, checkpoint=checkpoint,
            )
        done = len(checkpoint)
        assert done >= 1
    finally:
        checkpoint.close()
    faults.clear()

    with ScanCheckpoint.open(path, fingerprint, resume=True) as resumed:
        assert len(resumed) == done
        rows = theorem13_scan(
            schemas, max_atoms=1, n_workers=2, checkpoint=resumed
        )
    assert rows == baseline


def _run_cli(args, tmp_path, extra_env=None):
    env = dict(os.environ)
    env.pop(faults.ENV_VAR, None)
    src_dir = str(pathlib.Path(repro.__file__).resolve().parents[1])
    env["PYTHONPATH"] = os.pathsep.join(
        filter(None, [src_dir, env.get("PYTHONPATH")])
    )
    if extra_env:
        env.update(extra_env)
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True, text=True, env=env, cwd=tmp_path, timeout=300,
    )


def _report_lines(stdout):
    # Perf lines carry wall-clock times; everything else must match.
    return [line for line in stdout.splitlines() if not line.startswith("perf:")]


def test_cli_resume_reproduces_uninterrupted_report(tmp_path):
    # Acceptance criterion 3 (CLI level), byte-for-byte minus perf lines.
    scan_args = [
        "theorem13", "--types", "T", "--max-relations", "1",
        "--max-arity", "2", "--max-atoms", "1", "--workers", "2",
    ]
    clean = _run_cli(scan_args, tmp_path)
    assert clean.returncode == 0, clean.stderr

    plan = FaultPlan(
        [rule("scan.cell.done", "interrupt", max_fires=1)], install_pid=0
    )
    interrupted = _run_cli(
        scan_args + ["--checkpoint", "scan.jsonl"],
        tmp_path,
        extra_env={faults.ENV_VAR: plan.as_json()},
    )
    assert interrupted.returncode == 130, interrupted.stdout + interrupted.stderr
    assert "cell(s) journaled" in interrupted.stdout
    assert "--resume" in interrupted.stdout

    resumed = _run_cli(
        scan_args + ["--checkpoint", "scan.jsonl", "--resume"], tmp_path
    )
    assert resumed.returncode == 0, resumed.stdout + resumed.stderr
    assert _report_lines(resumed.stdout) == _report_lines(clean.stdout)


def test_cli_checkpoint_mismatch_is_an_input_error(tmp_path):
    base = [
        "theorem13", "--types", "T", "--max-relations", "1",
        "--max-arity", "2", "--workers", "2", "--checkpoint", "scan.jsonl",
    ]
    first = _run_cli(base + ["--max-atoms", "1"], tmp_path)
    assert first.returncode == 0, first.stderr
    # Same journal, different scan configuration: refuse to resume.
    mismatched = _run_cli(base + ["--max-atoms", "2", "--resume"], tmp_path)
    assert mismatched.returncode == 2
    assert "different scan configuration" in mismatched.stderr


def test_cli_interrupt_during_inline_fallback_still_prints_resume_hint(tmp_path):
    # Regression (satellite b): every first pool attempt is killed so the
    # scan falls back to in-process execution, and a simulated Ctrl-C
    # lands exactly on that fallback path (the parent-side retry.inline
    # site).  The interrupt must surface promptly: exit 130 with the
    # journal intact and the resume hint printed — not be absorbed into
    # another retry round.
    scan_args = [
        "theorem13", "--types", "T", "--max-relations", "1",
        "--max-arity", "2", "--max-atoms", "1", "--workers", "2",
        "--retries", "1",
    ]
    clean = _run_cli(scan_args, tmp_path)
    assert clean.returncode == 0, clean.stderr

    plan = FaultPlan(
        [
            rule("scan.cell", "kill", attempts=[0]),
            rule("retry.inline", "interrupt", max_fires=1),
        ],
        install_pid=0,
    )
    interrupted = _run_cli(
        scan_args + ["--checkpoint", "scan.jsonl"],
        tmp_path,
        extra_env={faults.ENV_VAR: plan.as_json()},
    )
    assert interrupted.returncode == 130, (
        interrupted.stdout + interrupted.stderr
    )
    assert "cell(s) journaled" in interrupted.stdout
    assert "--resume" in interrupted.stdout

    resumed = _run_cli(
        scan_args + ["--checkpoint", "scan.jsonl", "--resume"], tmp_path
    )
    assert resumed.returncode == 0, resumed.stdout + resumed.stderr
    assert _report_lines(resumed.stdout) == _report_lines(clean.stdout)
