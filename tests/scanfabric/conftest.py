"""Shared hygiene for the scan-fabric suite (same rules as resilience).

Fault plans ride on a process-global and an environment variable; a test
that leaks either would corrupt every test after it.
"""

import pytest

from repro.obs import events
from repro.resilience import deadline as deadline_mod
from repro.resilience import faults


@pytest.fixture(autouse=True)
def _clean_fabric_state():
    faults.clear()
    events.drain_incidents()
    assert deadline_mod.active_deadlines() == ()
    yield
    faults.clear()
    events.drain_incidents()
    assert deadline_mod.active_deadlines() == ()
