"""Worker/merge behaviour of the scan fabric, including injected faults.

The CLI-level multi-process chaos drill lives in ``test_fabric_cli.py``;
these tests exercise the same machinery in-process, where assertions can
reach the journals, leases and metrics directly.
"""

import json

import pytest

from repro.core.search import theorem13_scan
from repro.errors import FabricError
from repro.obs import metrics
from repro.resilience import install, rule
from repro.scanfabric import (
    load_plan,
    merge_journals,
    run_fabric_worker,
    write_merged,
)
from repro.scanfabric import journal as fabric_journal
from repro.workloads import enumerate_keyed_schemas
from repro.workloads.schema_gen import shuffled_copy


def _universe():
    return list(
        enumerate_keyed_schemas(("T", "U"), max_relations=2, max_arity=1)
    )


def _counter(name):
    return metrics.registry().snapshot().get(name, 0)


def _as_tuples(rows):
    return [tuple(row) for row in rows]


def test_single_worker_completes_and_merge_matches_clean_scan(tmp_path):
    schemas = _universe()
    baseline = theorem13_scan(schemas, max_atoms=2)
    result = run_fabric_worker(tmp_path, schemas, shard_cells=4, owner="w1")
    assert result.shards_lost == 0
    assert result.cells_scanned == len(baseline)
    merged = merge_journals(tmp_path)
    assert _as_tuples(merged.rows) == _as_tuples(baseline)
    assert merged.stats.cells_scanned == len(baseline)
    assert merged.stats.cells_symmetric == 0


def test_symmetric_cells_resolve_to_their_representative(tmp_path):
    schemas = _universe()
    extended = schemas + [shuffled_copy(schemas[0], seed=7)]
    baseline = theorem13_scan(extended, max_atoms=2)
    run_fabric_worker(tmp_path, extended, shard_cells=4, owner="w1")
    merged = merge_journals(tmp_path)
    assert _as_tuples(merged.rows) == _as_tuples(baseline)
    assert merged.stats.cells_symmetric > 0
    # Provenance marks point at the representative cell.
    plan = load_plan(tmp_path)
    for cell, rep in plan.symmetric.items():
        mark = merged.provenance[cell]
        assert mark == {"provenance": "symmetric", "symmetric_to": list(rep)}


def test_lease_expiry_mid_shard_is_resumed_by_second_pass(tmp_path):
    # An injected LeaseExpired on shard 0's first heartbeat makes the
    # worker abandon the shard mid-scan; its journal survives, and the
    # worker's own next pass (generation 1) resumes from it.
    schemas = _universe()
    baseline = theorem13_scan(schemas, max_atoms=2)
    lost_before = _counter("fabric.leases.lost")
    install([
        rule("fabric.cell", "lease_expire", keys=[0], attempts=[0],
             max_fires=1),
    ])
    result = run_fabric_worker(
        tmp_path, schemas, shard_cells=4, owner="w1", ttl=5.0
    )
    assert result.shards_lost == 1
    assert result.shards_resumed >= 1
    assert result.cells_resumed >= 1
    assert _counter("fabric.leases.lost") == lost_before + 1
    merged = merge_journals(tmp_path)
    assert _as_tuples(merged.rows) == _as_tuples(baseline)


def test_second_owner_steals_unfinished_shards_and_merge_is_clean(tmp_path):
    # Worker 1 loses every shard's lease after one scanned cell and dies
    # outright when it comes back for a second try (generation 1) — so
    # every shard is left mid-flight with an unreleased lease.  Worker 2
    # steals them all, resumes each journal and finishes; the merge is
    # identical to a clean scan.
    from repro.errors import InjectedFault
    from repro.resilience import faults

    schemas = _universe()
    baseline = theorem13_scan(schemas, max_atoms=2)

    class Expiring:
        """A clock that ages the lease 2s per observation (TTL is 4s)."""

        def __init__(self):
            self.now = 0.0

        def __call__(self):
            self.now += 2.0
            return self.now

    install([
        rule("fabric.cell", "lease_expire"),
        rule("fabric.shard", "raise", attempts=[1]),
    ])
    with pytest.raises(InjectedFault):
        run_fabric_worker(
            tmp_path, schemas, shard_cells=2, owner="w1", ttl=4.0,
            clock=Expiring(),
        )
    faults.clear()
    stolen_before = _counter("fabric.shards.stolen")
    second = run_fabric_worker(
        tmp_path, schemas, shard_cells=2, owner="w2", ttl=4.0
    )
    assert second.shards_completed > 0
    assert second.cells_resumed > 0  # w1's journaled cells were reused
    assert _counter("fabric.shards.stolen") > stolen_before
    merged = merge_journals(tmp_path)
    assert _as_tuples(merged.rows) == _as_tuples(baseline)


def test_merge_requires_complete_shards(tmp_path):
    # A complete run with one shard's journal (and marker) deleted looks
    # exactly like a fabric whose workers are still mid-flight.
    schemas = _universe()
    run_fabric_worker(tmp_path, schemas, shard_cells=4, owner="w1")
    marker = fabric_journal.done_marker_path(tmp_path, 0)
    marker.unlink()
    for segment in fabric_journal.segment_paths(tmp_path, 0):
        segment.unlink()
    with pytest.raises(FabricError, match="not yet journaled"):
        merge_journals(tmp_path)
    partial = merge_journals(tmp_path, require_complete=False)
    plan = load_plan(tmp_path)
    assert len(partial.rows) == len(plan.all_cells) - len(plan.shards[0])


def test_merge_rejects_conflicting_duplicate_cells(tmp_path):
    schemas = _universe()
    run_fabric_worker(tmp_path, schemas, shard_cells=4, owner="w1")
    plan = load_plan(tmp_path)
    # Forge a second segment for shard 0 disagreeing on its first cell.
    victim = plan.shards[0][0]
    forged = fabric_journal.segment_path(tmp_path, 0, 99, "evil")
    header = {
        "v": 1, "kind": "header", "fingerprint": plan.scan_fingerprint,
    }
    cell = {
        "v": 1, "kind": "cell", "key": list(victim),
        "data": {"isomorphic": True, "found": False, "verdict": "ok"},
    }
    forged.write_text(
        json.dumps(header) + "\n" + json.dumps(cell) + "\n"
    )
    with pytest.raises(FabricError, match="conflicting verdicts"):
        merge_journals(tmp_path)


def test_merge_tolerates_torn_tail_and_stillborn_segments(tmp_path):
    schemas = _universe()
    baseline = theorem13_scan(schemas, max_atoms=2)
    run_fabric_worker(tmp_path, schemas, shard_cells=4, owner="w1")
    # A dead-at-birth segment (empty file) and one with a torn final
    # line must both be tolerated.
    fabric_journal.segment_path(tmp_path, 0, 7, "dead").write_text("")
    fabric_journal.segment_path(tmp_path, 1, 7, "torn").write_text(
        '{"v": 1, "kind": "hea'
    )
    plan = load_plan(tmp_path)
    live = fabric_journal.segment_paths(tmp_path, 2)[0]
    with live.open("a") as handle:
        handle.write('{"v": 1, "kind": "cell", "key": [')  # torn tail
    merged = merge_journals(tmp_path)
    assert _as_tuples(merged.rows) == _as_tuples(baseline)
    assert plan.scan_fingerprint["kind"] == "theorem13"


def test_merged_journal_is_a_valid_prior_and_checkpoint(tmp_path):
    schemas = _universe()
    run_fabric_worker(tmp_path, schemas, shard_cells=4, owner="w1")
    merged_path = write_merged(tmp_path, merge_journals(tmp_path))
    # (a) as an --incremental prior: everything carries, nothing scans.
    second = run_fabric_worker(
        tmp_path / "next", schemas, shard_cells=4, owner="w2",
        prior=merged_path,
    )
    assert second.cells_scanned == 0
    plan = load_plan(tmp_path / "next")
    assert plan.shards == ()
    assert merge_journals(tmp_path / "next").stats.cells_carried == len(
        plan.carried
    )
    # (b) as a plain checkpoint: a resumed scan replays every cell.
    from repro.core.search import scan_fingerprint
    from repro.resilience import ScanCheckpoint

    fingerprint = scan_fingerprint("theorem13", schemas, 2, None, None)
    with ScanCheckpoint.open(merged_path, fingerprint, resume=True) as ck:
        assert len(ck) == len(plan.all_cells)


def test_write_merged_is_atomic_and_rerunnable(tmp_path):
    schemas = _universe()
    run_fabric_worker(tmp_path, schemas, shard_cells=4, owner="w1")
    first = write_merged(tmp_path, merge_journals(tmp_path))
    original = first.read_bytes()
    again = write_merged(tmp_path, merge_journals(tmp_path))
    assert again.read_bytes() == original
    # No temp litter left behind.
    assert not list(tmp_path.glob(".merged.jsonl.*"))


def test_incremental_metrics_count_carried_vs_scanned(tmp_path):
    # Acceptance criterion: after a 1-schema perturbation, the metrics
    # registry shows exactly the affected cells as scanned and the rest
    # as carried.
    schemas = _universe()
    run_fabric_worker(tmp_path, schemas, shard_cells=4, owner="w1")
    merged = write_merged(tmp_path, merge_journals(tmp_path))
    perturbed = list(schemas)
    victim = 1
    perturbed[victim] = shuffled_copy(schemas[victim], seed=13)
    carried_before = _counter("fabric.cells.carried")
    planned_before = _counter("fabric.cells.planned")
    scanned_before = _counter("fabric.cells.scanned")
    result = run_fabric_worker(
        tmp_path / "incr", perturbed, shard_cells=4, owner="w2",
        prior=merged, symmetry=False,
    )
    n = len(schemas)
    affected = n  # cells (i, victim) and (victim, j): n of them
    assert _counter("fabric.cells.planned") == planned_before + affected
    assert _counter("fabric.cells.scanned") == scanned_before + affected
    total = n * (n + 1) // 2
    assert _counter("fabric.cells.carried") == carried_before + total - affected
    assert result.cells_scanned == affected


def test_worker_streams_telemetry_frames_and_lease_events(tmp_path):
    from repro.obs.telemetry import frame_path, read_telemetry

    schemas = _universe()
    result = run_fabric_worker(tmp_path, schemas, shard_cells=4, owner="w1")
    log = read_telemetry(frame_path(tmp_path, "w1"))
    assert log.owner == "w1" and log.torn == 0
    assert log.frames[0]["phase"] == "start"
    assert log.frames[-1]["phase"] == "done"
    assert log.frames[-1]["cells_done"] == result.cells_scanned
    plan = load_plan(tmp_path)
    assert log.frames[-1]["cells_total"] == len(plan.scan_cells)
    # One acquire + one release per shard this worker completed.
    actions = [e["action"] for e in log.leases]
    assert actions.count("acquire") == result.shards_completed
    assert actions.count("release") == result.shards_completed
    assert all(e["ttl"] == 30.0 for e in log.frames if "ttl" in e)


def test_worker_telemetry_can_be_disabled(tmp_path):
    from repro.obs.telemetry import TELEMETRY_DIR

    schemas = _universe()
    run_fabric_worker(tmp_path, schemas, shard_cells=4, owner="w1",
                      telemetry=False)
    assert not (tmp_path / TELEMETRY_DIR).exists()


def test_worker_reports_lost_leases_and_pruned_resumed_cells(tmp_path):
    from repro.obs.telemetry import frame_path, read_telemetry

    schemas = _universe()
    install([
        rule("fabric.cell", "lease_expire", keys=[0], attempts=[0],
             max_fires=1),
    ])
    pruned = []
    result = run_fabric_worker(
        tmp_path, schemas, shard_cells=4, owner="w1", ttl=5.0,
        on_pruned=pruned.append,
    )
    assert result.cells_resumed >= 1
    # The journal replay on the second pass reported its resumed cells
    # as pruned work (they advance progress without entering the rate).
    assert sum(pruned) == result.cells_resumed
    log = read_telemetry(frame_path(tmp_path, "w1"))
    assert "lost" in [e["action"] for e in log.leases]


def test_thief_telemetry_records_steal_events(tmp_path):
    from repro.errors import InjectedFault
    from repro.obs.telemetry import frame_path, read_telemetry
    from repro.resilience import faults

    schemas = _universe()

    class Expiring:
        def __init__(self):
            self.now = 0.0

        def __call__(self):
            self.now += 2.0
            return self.now

    install([
        rule("fabric.cell", "lease_expire"),
        rule("fabric.shard", "raise", attempts=[1]),
    ])
    with pytest.raises(InjectedFault):
        run_fabric_worker(
            tmp_path, schemas, shard_cells=2, owner="w1", ttl=4.0,
            clock=Expiring(),
        )
    faults.clear()
    second = run_fabric_worker(
        tmp_path, schemas, shard_cells=2, owner="w2", ttl=4.0
    )
    assert second.shards_completed > 0
    log = read_telemetry(frame_path(tmp_path, "w2"))
    steals = [e for e in log.leases if e["action"] == "steal"]
    assert steals and all(e["owner"] == "w2" for e in steals)
