"""CLI-level fabric drills: concurrency, chaos, incremental re-runs.

The centrepiece is the ISSUE's chaos invariant, the same drill CI's
``fabric-chaos`` job runs: three concurrent ``theorem13 --fabric``
workers, a fault plan that OOM-kills the first owner of two shards
mid-cell, and a merge whose report must be byte-for-byte identical
(minus ``perf:``/``fabric:`` status lines) to a clean single-process
run.
"""

import json
import os
import pathlib
import subprocess
import sys

import pytest

import repro
from repro.resilience import FaultPlan, faults, rule

SCAN_ARGS = [
    "theorem13", "--types", "T,U", "--max-relations", "2",
    "--max-arity", "1", "--max-atoms", "2",
]
# 5 schemas -> 15 cells -> 8 shards of <= 2 cells.
FABRIC_ARGS = ["--shard-cells", "2", "--lease-ttl", "1.0"]


def _env(extra=None):
    env = dict(os.environ)
    env.pop(faults.ENV_VAR, None)
    src_dir = str(pathlib.Path(repro.__file__).resolve().parents[1])
    env["PYTHONPATH"] = os.pathsep.join(
        filter(None, [src_dir, env.get("PYTHONPATH")])
    )
    if extra:
        env.update(extra)
    return env


def _run_cli(args, tmp_path, extra_env=None):
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True, text=True, env=_env(extra_env), cwd=tmp_path,
        timeout=300,
    )


def _report_lines(stdout):
    # perf: lines carry wall-clock times and fabric: lines carry run-
    # specific provenance; the verdict report proper must match exactly.
    return [
        line
        for line in stdout.splitlines()
        if not line.startswith(("perf:", "fabric:"))
    ]


def test_fabric_chaos_three_workers_with_kills_matches_clean_run(tmp_path):
    clean = _run_cli(SCAN_ARGS, tmp_path)
    assert clean.returncode == 0, clean.stderr

    # Kill the generation-0 owner of shards 0 and 3 right after their
    # first journaled cell; thieves (generation >= 1) are spared.  At
    # most two of the three workers die, so the fabric always drains.
    plan = FaultPlan(
        [rule("fabric.cell", "kill", keys=[0, 3], attempts=[0])],
        install_pid=0,
    )
    chaos_env = {faults.ENV_VAR: plan.as_json()}
    worker_args = SCAN_ARGS + ["--fabric", "fab"] + FABRIC_ARGS
    procs = [
        subprocess.Popen(
            [sys.executable, "-m", "repro", *worker_args,
             "--fabric-owner", f"chaos-{i}"],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
            env=_env(chaos_env), cwd=tmp_path,
        )
        for i in range(3)
    ]
    exits = [proc.wait(timeout=300) for proc in procs]
    # Workers either finish the fabric (0) or were chaos-killed (86).
    assert set(exits) <= {0, 86}, [
        (code, proc.communicate()) for code, proc in zip(exits, procs)
    ]
    assert 0 in exits  # at least one survivor drained the grid
    assert 86 in exits  # and the drill actually killed someone

    merged = _run_cli(["merge-journals", "fab"], tmp_path)
    assert merged.returncode == 0, merged.stdout + merged.stderr
    assert _report_lines(merged.stdout) == _report_lines(clean.stdout)
    assert "scanned=15" in merged.stdout


def test_fabric_single_worker_then_incremental_carries_everything(tmp_path):
    clean = _run_cli(SCAN_ARGS, tmp_path)
    assert clean.returncode == 0, clean.stderr

    first = _run_cli(
        SCAN_ARGS + ["--fabric", "fab1"] + FABRIC_ARGS, tmp_path
    )
    assert first.returncode == 0, first.stdout + first.stderr
    merged1 = _run_cli(["merge-journals", "fab1"], tmp_path)
    assert merged1.returncode == 0, merged1.stderr
    assert _report_lines(merged1.stdout) == _report_lines(clean.stdout)

    # Incremental against the merged journal: nothing changed, so every
    # cell carries and the second fabric plans zero shards.
    second = _run_cli(
        SCAN_ARGS
        + ["--fabric", "fab2", "--incremental", "fab1/merged.jsonl"]
        + FABRIC_ARGS
        + ["--metrics-json", "m.json"],
        tmp_path,
    )
    assert second.returncode == 0, second.stdout + second.stderr
    census = json.loads((tmp_path / "m.json").read_text())["fabric"]
    assert census["cells.carried"] == 15
    assert census.get("cells.scanned", 0) == 0
    assert census.get("cells.planned", 0) == 0

    merged2 = _run_cli(["merge-journals", "fab2"], tmp_path)
    assert merged2.returncode == 0, merged2.stderr
    assert _report_lines(merged2.stdout) == _report_lines(clean.stdout)
    assert "carried=15" in merged2.stdout


def test_fabric_flag_conflicts_are_input_errors(tmp_path):
    conflict = _run_cli(
        SCAN_ARGS + ["--fabric", "fab", "--checkpoint", "x.jsonl"], tmp_path
    )
    assert conflict.returncode == 2
    assert "per-shard journals" in conflict.stderr
    deadline = _run_cli(
        SCAN_ARGS + ["--fabric", "fab", "--deadline", "10"], tmp_path
    )
    assert deadline.returncode == 2
    assert "decide every cell" in deadline.stderr
    orphan = _run_cli(
        SCAN_ARGS + ["--incremental", "prior.jsonl"], tmp_path
    )
    assert orphan.returncode == 2
    assert "--incremental requires --fabric" in orphan.stderr


def test_merge_journals_on_unfinished_fabric(tmp_path):
    # A worker killed on its very first cell leaves an unfinished
    # fabric: strict merge refuses, --partial merges the rest (exit 3).
    plan = FaultPlan(
        [rule("fabric.cell", "kill")], install_pid=0,
    )
    worker = _run_cli(
        SCAN_ARGS + ["--fabric", "fab"] + FABRIC_ARGS,
        tmp_path,
        extra_env={faults.ENV_VAR: plan.as_json()},
    )
    assert worker.returncode == 86
    strict = _run_cli(["merge-journals", "fab"], tmp_path)
    assert strict.returncode == 2
    assert "workers still running" in strict.stderr
    partial = _run_cli(["merge-journals", "fab", "--partial"], tmp_path)
    assert partial.returncode == 3, partial.stdout + partial.stderr


def test_kill_merge_leaves_no_partial_merged_journal(tmp_path):
    # The kill_merge drill: a merge process dying mid-write (exit 87)
    # must leave merged.jsonl either absent or from a previous complete
    # merge — never torn — and the re-run produces the full journal.
    worker = _run_cli(
        SCAN_ARGS + ["--fabric", "fab"] + FABRIC_ARGS, tmp_path
    )
    assert worker.returncode == 0, worker.stderr
    plan = FaultPlan(
        [rule("merge.record", "kill_merge", keys=["0,4"])], install_pid=0,
    )
    killed = _run_cli(
        ["merge-journals", "fab"],
        tmp_path,
        extra_env={faults.ENV_VAR: plan.as_json()},
    )
    assert killed.returncode == 87
    assert not (tmp_path / "fab" / "merged.jsonl").exists()
    rerun = _run_cli(["merge-journals", "fab"], tmp_path)
    assert rerun.returncode == 0, rerun.stderr
    lines = (tmp_path / "fab" / "merged.jsonl").read_text().splitlines()
    assert len(lines) == 1 + 15  # header + every cell


def test_fleet_status_after_chaos_names_all_three_workers(tmp_path):
    # The observability acceptance drill: after the kill drill, the
    # fleet aggregator must still name every worker — the dead ones from
    # their flushed (possibly torn) telemetry streams — and the JSON and
    # table renderings must agree on completion.
    plan = FaultPlan(
        [rule("fabric.cell", "kill", keys=[0, 3], attempts=[0])],
        install_pid=0,
    )
    chaos_env = {faults.ENV_VAR: plan.as_json()}
    worker_args = SCAN_ARGS + ["--fabric", "fab"] + FABRIC_ARGS
    procs = [
        subprocess.Popen(
            [sys.executable, "-m", "repro", *worker_args,
             "--fabric-owner", f"chaos-{i}"],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
            env=_env(chaos_env), cwd=tmp_path,
        )
        for i in range(3)
    ]
    exits = [proc.wait(timeout=300) for proc in procs]
    assert set(exits) <= {0, 86} and 0 in exits and 86 in exits

    status = _run_cli(["fleet-status", "fab", "--json"], tmp_path)
    assert status.returncode == 0, status.stdout + status.stderr
    snap = json.loads(status.stdout)
    owners = sorted(w["owner"] for w in snap["workers"])
    assert owners == ["chaos-0", "chaos-1", "chaos-2"]
    assert snap["complete"] is True
    assert snap["cells"]["done"] == 15
    assert snap["shards"]["stolen"] >= 1  # the survivor took over
    # Per-worker cell counts: the survivor scanned some, and everyone's
    # counts are reported (killed workers from their last flushed frame).
    assert sum(w["cells_done"] for w in snap["workers"]) >= 1

    table = _run_cli(["fleet-status", "fab"], tmp_path)
    assert table.returncode == 0
    assert "COMPLETE" in table.stdout
    for owner in owners:
        assert owner in table.stdout


def test_clean_three_worker_fleet_stitches_to_three_swimlanes(tmp_path):
    # A clean concurrent fleet (no kills: every worker survives to write
    # its span trace).  The stitched Chrome timeline must carry one
    # swimlane per worker, pass the schema validator, and invert
    # losslessly through spans_from_chrome.
    worker_args = SCAN_ARGS + ["--fabric", "fab", "--shard-cells", "2",
                               "--lease-ttl", "5.0"]
    procs = [
        subprocess.Popen(
            [sys.executable, "-m", "repro", *worker_args,
             "--fabric-owner", f"w-{i}"],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
            env=_env(), cwd=tmp_path,
        )
        for i in range(3)
    ]
    exits = [proc.wait(timeout=300) for proc in procs]
    assert exits == [0, 0, 0], [proc.communicate() for proc in procs]

    stitched = _run_cli(
        ["stitch-traces", "fab", "--out", "fab/stitched.trace.json",
         "--events-out", "fab/stitched.jsonl"],
        tmp_path,
    )
    assert stitched.returncode == 0, stitched.stdout + stitched.stderr
    assert "3 workers" in stitched.stdout

    trace = json.loads((tmp_path / "fab" / "stitched.trace.json").read_text())
    lanes = {
        e["args"]["name"] for e in trace["traceEvents"]
        if e.get("ph") == "M" and e.get("name") == "process_name"
    }
    assert lanes == {"w-0", "w-1", "w-2"}

    # Lossless inversion: spans survive the Chrome round trip exactly,
    # lease instants included.
    from repro.obs.events import read_trace
    from repro.obs.export import (
        instants_from_chrome,
        spans_from_chrome,
        stitch_worker_events,
    )
    from repro.obs.telemetry import worker_trace_paths

    traces = {
        owner: read_trace(path)
        for owner, path in worker_trace_paths(tmp_path / "fab").items()
    }
    expected = stitch_worker_events(traces)
    pid_order = sorted({r.proc for r in expected.records})
    # The Chrome encoding keeps nanosecond resolution (µs rounded to
    # 3 dp), so the inversion is exact at 9 decimal places.
    quantized = [
        r._replace(start=round(r.start, 9), end=round(r.end, 9))
        for r in expected.records
    ]
    assert spans_from_chrome(trace) == sorted(
        quantized,
        key=lambda r: (pid_order.index(r.proc), r.start, r.end),
    )
    recovered = instants_from_chrome(trace)
    assert recovered == list(expected.instants)
    assert {e["owner"] for e in recovered} == {"w-0", "w-1", "w-2"}

    # Both stitched renderings pass the trace validator.
    import pathlib as _pathlib

    script = (
        _pathlib.Path(repro.__file__).resolve().parents[2]
        / "scripts" / "validate_trace.py"
    )
    check = subprocess.run(
        [sys.executable, str(script), "fab/stitched.trace.json",
         "fab/stitched.jsonl"],
        capture_output=True, text=True, env=_env(), cwd=tmp_path,
        timeout=120,
    )
    assert check.returncode == 0, check.stdout + check.stderr


def test_merge_dashboard_verdicts_match_cli_byte_for_byte(tmp_path):
    worker = _run_cli(
        SCAN_ARGS + ["--fabric", "fab"] + FABRIC_ARGS, tmp_path
    )
    assert worker.returncode == 0, worker.stderr
    merged = _run_cli(
        ["merge-journals", "fab", "--html-report", "dash.html"], tmp_path
    )
    assert merged.returncode == 0, merged.stderr
    verdict_line = next(
        line for line in merged.stdout.splitlines()
        if line.startswith("verdicts:")
    )
    html = (tmp_path / "dash.html").read_text()
    assert verdict_line in html  # byte-identical acceptance criterion
    assert "provenance: scanned=15" in html
    assert 'class="gantt"' in html  # lease ownership bars from telemetry


def test_top_exits_zero_on_complete_fabric_and_tolerates_torn_frames(tmp_path):
    worker = _run_cli(
        SCAN_ARGS + ["--fabric", "fab"] + FABRIC_ARGS, tmp_path
    )
    assert worker.returncode == 0, worker.stderr
    # Tear the telemetry stream the way a chaos kill does mid-write.
    stream = next((tmp_path / "fab" / "telemetry").glob("*.telemetry.jsonl"))
    with stream.open("a") as handle:
        handle.write('{"v": 2, "type": "telemetry", "owner"')
    top = _run_cli(
        ["top", "fab", "--interval", "0.05", "--frames", "3"], tmp_path
    )
    assert top.returncode == 0, top.stdout + top.stderr
    assert "COMPLETE" in top.stdout


def test_top_exhausts_frames_on_incomplete_fabric(tmp_path):
    # A fabric whose worker died on the first cell never completes; top
    # must stop after --frames refreshes with exit 3, not hang.
    plan = FaultPlan([rule("fabric.cell", "kill")], install_pid=0)
    worker = _run_cli(
        SCAN_ARGS + ["--fabric", "fab"] + FABRIC_ARGS,
        tmp_path,
        extra_env={faults.ENV_VAR: plan.as_json()},
    )
    assert worker.returncode == 86
    top = _run_cli(
        ["top", "fab", "--interval", "0.05", "--frames", "2"], tmp_path
    )
    assert top.returncode == 3, top.stdout + top.stderr
    assert "COMPLETE" not in top.stdout


def test_fleet_status_without_a_fabric_is_an_input_error(tmp_path):
    missing = _run_cli(["fleet-status", "nope"], tmp_path)
    assert missing.returncode == 2
    stitch = _run_cli(["stitch-traces", "nope"], tmp_path)
    assert stitch.returncode == 2
    assert "no worker traces" in stitch.stderr
