"""CLI-level fabric drills: concurrency, chaos, incremental re-runs.

The centrepiece is the ISSUE's chaos invariant, the same drill CI's
``fabric-chaos`` job runs: three concurrent ``theorem13 --fabric``
workers, a fault plan that OOM-kills the first owner of two shards
mid-cell, and a merge whose report must be byte-for-byte identical
(minus ``perf:``/``fabric:`` status lines) to a clean single-process
run.
"""

import json
import os
import pathlib
import subprocess
import sys

import pytest

import repro
from repro.resilience import FaultPlan, faults, rule

SCAN_ARGS = [
    "theorem13", "--types", "T,U", "--max-relations", "2",
    "--max-arity", "1", "--max-atoms", "2",
]
# 5 schemas -> 15 cells -> 8 shards of <= 2 cells.
FABRIC_ARGS = ["--shard-cells", "2", "--lease-ttl", "1.0"]


def _env(extra=None):
    env = dict(os.environ)
    env.pop(faults.ENV_VAR, None)
    src_dir = str(pathlib.Path(repro.__file__).resolve().parents[1])
    env["PYTHONPATH"] = os.pathsep.join(
        filter(None, [src_dir, env.get("PYTHONPATH")])
    )
    if extra:
        env.update(extra)
    return env


def _run_cli(args, tmp_path, extra_env=None):
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True, text=True, env=_env(extra_env), cwd=tmp_path,
        timeout=300,
    )


def _report_lines(stdout):
    # perf: lines carry wall-clock times and fabric: lines carry run-
    # specific provenance; the verdict report proper must match exactly.
    return [
        line
        for line in stdout.splitlines()
        if not line.startswith(("perf:", "fabric:"))
    ]


def test_fabric_chaos_three_workers_with_kills_matches_clean_run(tmp_path):
    clean = _run_cli(SCAN_ARGS, tmp_path)
    assert clean.returncode == 0, clean.stderr

    # Kill the generation-0 owner of shards 0 and 3 right after their
    # first journaled cell; thieves (generation >= 1) are spared.  At
    # most two of the three workers die, so the fabric always drains.
    plan = FaultPlan(
        [rule("fabric.cell", "kill", keys=[0, 3], attempts=[0])],
        install_pid=0,
    )
    chaos_env = {faults.ENV_VAR: plan.as_json()}
    worker_args = SCAN_ARGS + ["--fabric", "fab"] + FABRIC_ARGS
    procs = [
        subprocess.Popen(
            [sys.executable, "-m", "repro", *worker_args,
             "--fabric-owner", f"chaos-{i}"],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
            env=_env(chaos_env), cwd=tmp_path,
        )
        for i in range(3)
    ]
    exits = [proc.wait(timeout=300) for proc in procs]
    # Workers either finish the fabric (0) or were chaos-killed (86).
    assert set(exits) <= {0, 86}, [
        (code, proc.communicate()) for code, proc in zip(exits, procs)
    ]
    assert 0 in exits  # at least one survivor drained the grid
    assert 86 in exits  # and the drill actually killed someone

    merged = _run_cli(["merge-journals", "fab"], tmp_path)
    assert merged.returncode == 0, merged.stdout + merged.stderr
    assert _report_lines(merged.stdout) == _report_lines(clean.stdout)
    assert "scanned=15" in merged.stdout


def test_fabric_single_worker_then_incremental_carries_everything(tmp_path):
    clean = _run_cli(SCAN_ARGS, tmp_path)
    assert clean.returncode == 0, clean.stderr

    first = _run_cli(
        SCAN_ARGS + ["--fabric", "fab1"] + FABRIC_ARGS, tmp_path
    )
    assert first.returncode == 0, first.stdout + first.stderr
    merged1 = _run_cli(["merge-journals", "fab1"], tmp_path)
    assert merged1.returncode == 0, merged1.stderr
    assert _report_lines(merged1.stdout) == _report_lines(clean.stdout)

    # Incremental against the merged journal: nothing changed, so every
    # cell carries and the second fabric plans zero shards.
    second = _run_cli(
        SCAN_ARGS
        + ["--fabric", "fab2", "--incremental", "fab1/merged.jsonl"]
        + FABRIC_ARGS
        + ["--metrics-json", "m.json"],
        tmp_path,
    )
    assert second.returncode == 0, second.stdout + second.stderr
    census = json.loads((tmp_path / "m.json").read_text())["fabric"]
    assert census["cells.carried"] == 15
    assert census.get("cells.scanned", 0) == 0
    assert census.get("cells.planned", 0) == 0

    merged2 = _run_cli(["merge-journals", "fab2"], tmp_path)
    assert merged2.returncode == 0, merged2.stderr
    assert _report_lines(merged2.stdout) == _report_lines(clean.stdout)
    assert "carried=15" in merged2.stdout


def test_fabric_flag_conflicts_are_input_errors(tmp_path):
    conflict = _run_cli(
        SCAN_ARGS + ["--fabric", "fab", "--checkpoint", "x.jsonl"], tmp_path
    )
    assert conflict.returncode == 2
    assert "per-shard journals" in conflict.stderr
    deadline = _run_cli(
        SCAN_ARGS + ["--fabric", "fab", "--deadline", "10"], tmp_path
    )
    assert deadline.returncode == 2
    assert "decide every cell" in deadline.stderr
    orphan = _run_cli(
        SCAN_ARGS + ["--incremental", "prior.jsonl"], tmp_path
    )
    assert orphan.returncode == 2
    assert "--incremental requires --fabric" in orphan.stderr


def test_merge_journals_on_unfinished_fabric(tmp_path):
    # A worker killed on its very first cell leaves an unfinished
    # fabric: strict merge refuses, --partial merges the rest (exit 3).
    plan = FaultPlan(
        [rule("fabric.cell", "kill")], install_pid=0,
    )
    worker = _run_cli(
        SCAN_ARGS + ["--fabric", "fab"] + FABRIC_ARGS,
        tmp_path,
        extra_env={faults.ENV_VAR: plan.as_json()},
    )
    assert worker.returncode == 86
    strict = _run_cli(["merge-journals", "fab"], tmp_path)
    assert strict.returncode == 2
    assert "workers still running" in strict.stderr
    partial = _run_cli(["merge-journals", "fab", "--partial"], tmp_path)
    assert partial.returncode == 3, partial.stdout + partial.stderr


def test_kill_merge_leaves_no_partial_merged_journal(tmp_path):
    # The kill_merge drill: a merge process dying mid-write (exit 87)
    # must leave merged.jsonl either absent or from a previous complete
    # merge — never torn — and the re-run produces the full journal.
    worker = _run_cli(
        SCAN_ARGS + ["--fabric", "fab"] + FABRIC_ARGS, tmp_path
    )
    assert worker.returncode == 0, worker.stderr
    plan = FaultPlan(
        [rule("merge.record", "kill_merge", keys=["0,4"])], install_pid=0,
    )
    killed = _run_cli(
        ["merge-journals", "fab"],
        tmp_path,
        extra_env={faults.ENV_VAR: plan.as_json()},
    )
    assert killed.returncode == 87
    assert not (tmp_path / "fab" / "merged.jsonl").exists()
    rerun = _run_cli(["merge-journals", "fab"], tmp_path)
    assert rerun.returncode == 0, rerun.stderr
    lines = (tmp_path / "fab" / "merged.jsonl").read_text().splitlines()
    assert len(lines) == 1 + 15  # header + every cell
