"""Unit tests for shard leases (:mod:`repro.scanfabric.lease`)."""

from repro.obs import metrics
from repro.scanfabric import LeaseRecord, ShardLease, read_lease


class FakeClock:
    def __init__(self, now=1000.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def _counter(name):
    return metrics.registry().snapshot().get(name, 0)


def test_acquire_writes_record_and_counts(tmp_path):
    clock = FakeClock()
    leased_before = _counter("fabric.shards.leased")
    lease = ShardLease(tmp_path / "s.lease", "w1", ttl=10.0, clock=clock)
    record = lease.try_acquire()
    assert record is not None
    assert record.owner == "w1"
    assert record.generation == 0
    assert not record.released
    assert read_lease(tmp_path / "s.lease") == record
    assert _counter("fabric.shards.leased") == leased_before + 1


def test_live_lease_blocks_other_owners(tmp_path):
    clock = FakeClock()
    first = ShardLease(tmp_path / "s.lease", "w1", ttl=10.0, clock=clock)
    assert first.try_acquire() is not None
    second = ShardLease(tmp_path / "s.lease", "w2", ttl=10.0, clock=clock)
    clock.advance(5.0)  # within TTL
    assert second.try_acquire() is None


def test_expired_lease_is_stolen_with_bumped_generation(tmp_path):
    clock = FakeClock()
    stolen_before = _counter("fabric.shards.stolen")
    first = ShardLease(tmp_path / "s.lease", "w1", ttl=10.0, clock=clock)
    assert first.try_acquire() is not None
    clock.advance(10.5)  # past TTL: w1 is presumed dead
    second = ShardLease(tmp_path / "s.lease", "w2", ttl=10.0, clock=clock)
    record = second.try_acquire()
    assert record is not None
    assert record.owner == "w2"
    assert record.generation == 1
    assert _counter("fabric.shards.stolen") == stolen_before + 1
    # The original owner's next heartbeat discovers the theft.
    assert not first.heartbeat()
    assert first.record is None


def test_heartbeat_extends_the_lease(tmp_path):
    clock = FakeClock()
    lease = ShardLease(tmp_path / "s.lease", "w1", ttl=10.0, clock=clock)
    lease.try_acquire()
    clock.advance(8.0)
    assert lease.heartbeat()
    clock.advance(8.0)  # 16s after acquire, 8s after heartbeat: still live
    other = ShardLease(tmp_path / "s.lease", "w2", ttl=10.0, clock=clock)
    assert other.try_acquire() is None


def test_release_makes_lease_claimable_immediately(tmp_path):
    clock = FakeClock()
    lease = ShardLease(tmp_path / "s.lease", "w1", ttl=10.0, clock=clock)
    lease.try_acquire()
    lease.release()
    assert read_lease(tmp_path / "s.lease").released
    other = ShardLease(tmp_path / "s.lease", "w2", ttl=10.0, clock=clock)
    record = other.try_acquire()
    assert record is not None
    assert record.generation == 1


def test_release_is_idempotent_and_respects_theft(tmp_path):
    clock = FakeClock()
    lease = ShardLease(tmp_path / "s.lease", "w1", ttl=10.0, clock=clock)
    lease.try_acquire()
    clock.advance(11.0)
    thief = ShardLease(tmp_path / "s.lease", "w2", ttl=10.0, clock=clock)
    thief.try_acquire()
    # The robbed owner's release must not clobber the thief's lease.
    lease.release()
    current = read_lease(tmp_path / "s.lease")
    assert current.owner == "w2"
    assert not current.released
    lease.release()  # idempotent no-op


def test_torn_lease_file_reads_as_absent(tmp_path):
    path = tmp_path / "s.lease"
    path.write_text('{"owner": "w1", "pid"')  # died mid-write
    assert read_lease(path) is None
    clock = FakeClock()
    lease = ShardLease(path, "w2", ttl=10.0, clock=clock)
    record = lease.try_acquire()
    assert record is not None
    assert record.generation == 0


def test_heartbeat_without_acquire_is_false(tmp_path):
    lease = ShardLease(tmp_path / "s.lease", "w1", ttl=10.0)
    assert not lease.heartbeat()


def test_lease_record_expiry_math():
    record = LeaseRecord(
        owner="w", pid=1, generation=0, acquired_at=0.0, heartbeat=100.0,
        ttl=30.0,
    )
    assert not record.expired(120.0)
    assert record.expired(130.1)
    assert not record.claimable(120.0)
    assert record._replace(released=True).claimable(100.0)
