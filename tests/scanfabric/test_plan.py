"""Unit tests for fabric planning (:mod:`repro.scanfabric.plan`)."""

import json

import pytest

from repro.errors import FabricError
from repro.scanfabric import (
    build_plan,
    ensure_plan,
    load_plan,
    merge_journals,
    run_fabric_worker,
    symmetry_map,
    write_merged,
    write_plan,
)
from repro.workloads import enumerate_keyed_schemas
from repro.workloads.schema_gen import shuffled_copy


def _universe():
    return list(
        enumerate_keyed_schemas(("T", "U"), max_relations=2, max_arity=1)
    )


def test_plan_partitions_the_whole_grid():
    schemas = _universe()
    plan = build_plan(schemas, shard_cells=4)
    shard_cells = [cell for shard in plan.shards for cell in shard]
    assert len(shard_cells) == len(set(shard_cells))
    covered = set(shard_cells) | set(plan.symmetric) | set(plan.carried)
    assert covered == set(plan.all_cells)
    assert set(plan.symmetric).isdisjoint(shard_cells)
    assert all(1 <= len(shard) <= 4 for shard in plan.shards)


def test_plan_is_deterministic_byte_for_byte(tmp_path):
    schemas = _universe()
    plan = build_plan(schemas, shard_cells=3)
    write_plan(tmp_path / "a", plan)
    write_plan(tmp_path / "b", build_plan(schemas, shard_cells=3))
    assert (tmp_path / "a" / "plan.json").read_bytes() == (
        tmp_path / "b" / "plan.json"
    ).read_bytes()


def test_plan_round_trips_through_disk(tmp_path):
    schemas = _universe() + [shuffled_copy(_universe()[0], seed=3)]
    plan = build_plan(schemas, shard_cells=2)
    write_plan(tmp_path, plan)
    loaded = load_plan(tmp_path)
    assert loaded == plan


def test_symmetry_map_on_canonical_universe_is_empty():
    # enumerate_keyed_schemas yields one schema per isomorphism class, so
    # no unordered pair repeats a class pair: symmetry reduction is a
    # no-op exactly when the universe is already canonical.
    assert symmetry_map(_universe()) == {}


def test_symmetry_map_spots_renamed_duplicates():
    schemas = _universe()
    duplicate = shuffled_copy(schemas[2], seed=11)
    extended = schemas + [duplicate]
    redundant = symmetry_map(extended)
    last = len(extended) - 1
    # Every pair involving the duplicate maps to the matching pair
    # involving schema 2 (both orders of the unordered class pair).
    assert redundant[(2, last)] == (2, 2)
    for i in range(len(schemas)):
        cell = (min(i, last), max(i, last))
        assert cell in redundant
        rep = redundant[cell]
        assert rep == (min(i, 2), max(i, 2))
    # Representatives never appear as keys.
    assert set(redundant).isdisjoint(set(redundant.values()))


def test_symmetry_can_be_disabled():
    schemas = _universe() + [shuffled_copy(_universe()[0], seed=5)]
    plan = build_plan(schemas, symmetry=False)
    assert plan.symmetric == {}
    assert set(plan.scan_cells) == set(plan.all_cells)


def test_ensure_plan_verifies_fingerprint(tmp_path):
    schemas = _universe()
    ensure_plan(tmp_path, schemas, shard_cells=4)
    # Same configuration: load, don't rebuild differently.
    again = ensure_plan(tmp_path, schemas, shard_cells=4)
    assert again.census() == build_plan(schemas, shard_cells=4).census()
    # Different configuration: refuse.
    with pytest.raises(FabricError, match="different scan configuration"):
        ensure_plan(tmp_path, schemas, shard_cells=5)
    with pytest.raises(FabricError, match="different scan configuration"):
        ensure_plan(tmp_path, schemas[:-1], shard_cells=4)


def test_load_plan_rejects_garbage(tmp_path):
    with pytest.raises(FabricError, match="not a fabric directory"):
        load_plan(tmp_path)
    (tmp_path / "plan.json").write_text("{not json")
    with pytest.raises(FabricError, match="corrupt plan"):
        load_plan(tmp_path)
    (tmp_path / "plan.json").write_text(json.dumps({"kind": "other", "v": 1}))
    with pytest.raises(FabricError, match="not a v1 fabric plan"):
        load_plan(tmp_path)


def test_incremental_carries_unchanged_cells(tmp_path):
    schemas = _universe()
    run_fabric_worker(tmp_path / "first", schemas, shard_cells=4, owner="w")
    merged = write_merged(
        tmp_path / "first", merge_journals(tmp_path / "first")
    )
    # Same universe: everything decided before carries forward.
    plan = build_plan(schemas, prior=merged)
    assert len(plan.carried) == len(plan.all_cells) - len(plan.symmetric)
    assert plan.shards == ()
    # Prior provenance marks are stripped on carry.
    assert all(
        set(data) == {"isomorphic", "found", "verdict"}
        for data in plan.carried.values()
    )


def test_incremental_rescans_only_perturbed_cells(tmp_path):
    # The ISSUE's acceptance criterion: perturb one schema, and exactly
    # the cells touching it are re-scanned; the rest carry forward.
    schemas = _universe()
    run_fabric_worker(tmp_path / "first", schemas, shard_cells=4, owner="w")
    merged = write_merged(
        tmp_path / "first", merge_journals(tmp_path / "first")
    )
    perturbed = list(schemas)
    victim = 2
    perturbed[victim] = shuffled_copy(schemas[victim], seed=9)
    plan = build_plan(perturbed, prior=merged, symmetry=False)
    rescanned = set(plan.scan_cells)
    assert rescanned == {
        cell for cell in plan.all_cells if victim in cell
    }
    assert set(plan.carried) == set(plan.all_cells) - rescanned


def test_incremental_rejects_prior_with_other_bounds(tmp_path):
    schemas = _universe()
    run_fabric_worker(tmp_path / "first", schemas, shard_cells=4, owner="w")
    merged = write_merged(
        tmp_path / "first", merge_journals(tmp_path / "first")
    )
    with pytest.raises(FabricError, match="max_atoms"):
        build_plan(schemas, max_atoms=3, prior=merged)


def test_shard_cells_must_be_positive():
    with pytest.raises(FabricError, match="shard_cells"):
        build_plan(_universe(), shard_cells=0)
