"""Loader for the repo's ``scripts/`` (not a package; imported by path)."""

import importlib.util
import sys
from pathlib import Path

import pytest

SCRIPTS_DIR = Path(__file__).resolve().parent.parent.parent / "scripts"


def load_script(name: str):
    """Import ``scripts/<name>.py`` as a module (cached per session)."""
    qualified = f"_repro_scripts_{name}"
    if qualified in sys.modules:
        return sys.modules[qualified]
    spec = importlib.util.spec_from_file_location(
        qualified, SCRIPTS_DIR / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules[qualified] = module
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="session")
def validate_trace():
    return load_script("validate_trace")


@pytest.fixture(scope="session")
def bench_history():
    return load_script("bench_history")
