"""Tests for the continuous-benchmark gate (``scripts/bench_history.py``)."""

import json

import pytest


def _report(e1_optimized=0.5, e1_baseline=5.0, mode="full", **extra_workloads):
    workloads = {
        "e1_theorem13_scan": {
            "baseline_s": e1_baseline,
            "optimized_s": e1_optimized,
            "verdicts_equal": True,
        }
    }
    workloads.update(extra_workloads)
    return {
        "timestamp": "2026-08-06T00:00:00",
        "python": "3.x",
        "machine": "test",
        "mode": mode,
        "workloads": workloads,
    }


@pytest.fixture
def paths(tmp_path):
    bench = tmp_path / "BENCH_perf.json"
    history = tmp_path / "BENCH_history.jsonl"
    return bench, history


def _run(bench_history, bench, history, report, *extra):
    bench.write_text(json.dumps(report))
    return bench_history.main(
        ["--bench", str(bench), "--history", str(history), *extra]
    )


def test_first_run_is_non_blocking_and_appends(bench_history, paths, capsys):
    bench, history = paths
    assert _run(bench_history, bench, history, _report()) == 0
    out = capsys.readouterr().out
    assert "non-blocking" in out
    entries = [json.loads(l) for l in history.read_text().splitlines()]
    assert len(entries) == 1
    assert entries[0]["ratios"]["e1_theorem13_scan"] == pytest.approx(0.1)
    assert entries[0]["mode"] == "full"


def test_unchanged_rerun_passes_and_appends(bench_history, paths):
    bench, history = paths
    assert _run(bench_history, bench, history, _report()) == 0
    assert _run(bench_history, bench, history, _report()) == 0
    assert len(history.read_text().splitlines()) == 2


def test_2x_slowdown_is_flagged_without_appending(bench_history, paths, capsys):
    bench, history = paths
    assert _run(bench_history, bench, history, _report(e1_optimized=0.5)) == 0
    capsys.readouterr()
    # Injected 2× slowdown: ratio doubles, exceeding median × 1.5.
    assert _run(bench_history, bench, history, _report(e1_optimized=1.0)) == 1
    out = capsys.readouterr().out
    assert "REGRESSION full/e1_theorem13_scan" in out
    assert "history NOT updated" in out
    assert len(history.read_text().splitlines()) == 1


def test_machine_drift_cancels_in_the_ratio(bench_history, paths):
    bench, history = paths
    assert _run(bench_history, bench, history, _report(0.5, 5.0)) == 0
    # A 3× slower machine scales both modes; the gate must not fire.
    assert _run(bench_history, bench, history, _report(1.5, 15.0)) == 0


def test_median_is_robust_to_one_noisy_entry(bench_history, paths):
    bench, history = paths
    for optimized in (0.5, 0.5, 2.0, 0.5, 0.5):  # one outlier
        _run(bench_history, bench, history, _report(e1_optimized=optimized))
    # Median of the window is 0.1; a matching run passes despite the spike.
    assert _run(bench_history, bench, history, _report(e1_optimized=0.5)) == 0


def test_modes_are_gated_separately(bench_history, paths, capsys):
    bench, history = paths
    assert _run(bench_history, bench, history, _report(mode="full")) == 0
    capsys.readouterr()
    # First smoke entry: no comparable history → non-blocking even though
    # a (non-comparable) full entry exists.
    code = _run(
        bench_history, bench, history,
        _report(e1_optimized=5.0, e1_baseline=5.0, mode="smoke"),
    )
    assert code == 0
    assert "non-blocking" in capsys.readouterr().out


def test_new_workload_has_nothing_to_gate_against(bench_history, paths):
    bench, history = paths
    assert _run(bench_history, bench, history, _report()) == 0
    report = _report(
        e2_new={"baseline_s": 1.0, "optimized_s": 99.0, "verdicts_equal": True}
    )
    assert _run(bench_history, bench, history, report) == 0


def test_dry_run_does_not_append(bench_history, paths):
    bench, history = paths
    assert _run(bench_history, bench, history, _report(), "--dry-run") == 0
    assert not history.exists()


def test_threshold_flag_tightens_the_gate(bench_history, paths):
    bench, history = paths
    assert _run(bench_history, bench, history, _report(e1_optimized=0.5)) == 0
    assert _run(
        bench_history, bench, history, _report(e1_optimized=0.6),
        "--threshold", "1.1",
    ) == 1


def test_malformed_history_lines_are_skipped(bench_history, paths, capsys):
    bench, history = paths
    history.write_text("{not json\n" + json.dumps({"mode": "full"}) + "\n")
    assert _run(bench_history, bench, history, _report()) == 0
    out = capsys.readouterr().out
    assert out.count("skipping") == 2


def test_unusable_report_exits_2(bench_history, paths, capsys):
    bench, history = paths
    assert bench_history.main(
        ["--bench", str(bench), "--history", str(history)]
    ) == 2
    capsys.readouterr()
    bench.write_text("{}")
    assert bench_history.main(
        ["--bench", str(bench), "--history", str(history)]
    ) == 2


def test_repo_seed_history_matches_bench_report(bench_history):
    # The committed history's latest full entry must be derivable from the
    # committed BENCH_perf.json, so the gate's baseline is reproducible.
    from pathlib import Path

    root = Path(bench_history.__file__).resolve().parent.parent
    report = json.loads((root / "BENCH_perf.json").read_text())
    entries = [
        json.loads(line)
        for line in (root / "BENCH_history.jsonl").read_text().splitlines()
        if line.strip()
    ]
    assert entries, "seed history must not be empty"
    latest_full = [e for e in entries if e["mode"] == "full"][-1]
    derived = bench_history.entry_from_report(report)
    assert latest_full["ratios"] == derived["ratios"]
