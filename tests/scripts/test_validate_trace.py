"""Tests for the hardened trace checker (``scripts/validate_trace.py``)."""

import json

from repro.obs.events import counter_event, span_events, write_trace
from repro.obs.tracing import SpanRecord


def _span(span_id="s0001", parent=None, name="root", start=0.0, end=1.0, proc=""):
    return SpanRecord(span_id, parent, name, start, end, proc)


def _write(tmp_path, events, name="trace.jsonl"):
    path = tmp_path / name
    path.write_text("\n".join(json.dumps(e) for e in events) + "\n")
    return path


def test_valid_trace_passes_with_census(tmp_path, capsys, validate_trace):
    path = tmp_path / "ok.jsonl"
    write_trace(path, [_span(), _span("s0002", "s0001", "child", 0.2, 0.8)],
                counters={"cache.hits": 1})
    assert validate_trace.main([str(path)]) == 0
    out = capsys.readouterr().out
    assert "ok: 5 event(s)" in out
    assert "counter=1" in out and "span_start=2" in out and "span_end=2" in out


def test_schema_violation_is_line_numbered(tmp_path, capsys, validate_trace):
    bad = counter_event("x", 1)
    del bad["value"]
    path = _write(tmp_path, [counter_event("ok", 1), bad])
    assert validate_trace.main([str(path)]) == 1
    out = capsys.readouterr().out
    assert f"{path}:2:" in out
    assert "FAIL" in out


def test_orphan_span_end_is_a_violation(tmp_path, capsys, validate_trace):
    _, end = span_events(_span())
    path = _write(tmp_path, [end])
    assert validate_trace.main([str(path)]) == 1
    assert "no matching span_start" in capsys.readouterr().out


def test_unmatched_span_start_is_a_violation(tmp_path, capsys, validate_trace):
    start, _ = span_events(_span())
    path = _write(tmp_path, [start])
    assert validate_trace.main([str(path)]) == 1
    assert "never ends" in capsys.readouterr().out


def test_child_before_parent_is_a_violation(tmp_path, capsys, validate_trace):
    parent_start, parent_end = span_events(_span("s0001", None, "root", 0.0, 1.0))
    child_start, child_end = span_events(
        _span("s0002", "s0001", "child", 0.2, 0.8)
    )
    # Child starts before its parent: ordering violation.
    path = _write(
        tmp_path, [child_start, parent_start, child_end, parent_end]
    )
    assert validate_trace.main([str(path)]) == 1
    assert "parent must start first" in capsys.readouterr().out


def test_stitched_trace_with_repeated_ids_is_valid(tmp_path, validate_trace):
    # Two complete journal segments concatenated: ids repeat, nesting holds.
    events = []
    for _segment in range(2):
        start, end = span_events(_span())
        events += [start, end]
    path = _write(tmp_path, events)
    assert validate_trace.main([str(path)]) == 0


def test_workers_pair_independently_per_proc(tmp_path, validate_trace):
    main_start, main_end = span_events(_span("s0001", None, "scan", 0.0, 1.0))
    w_start, w_end = span_events(
        _span("w0:s0001", None, "chunk", 0.0, 0.5, proc="w0")
    )
    path = _write(tmp_path, [main_start, w_start, w_end, main_end])
    assert validate_trace.main([str(path)]) == 0


def test_lenient_flag_demotes_unknown_fields(tmp_path, capsys, validate_trace):
    event = counter_event("x", 1)
    event["annotation"] = "from a v1.1 emitter"
    path = _write(tmp_path, [event])
    # Strict: fail.  Lenient: pass with a printed warning.
    assert validate_trace.main([str(path)]) == 1
    capsys.readouterr()
    assert validate_trace.main(["--lenient", str(path)]) == 0
    out = capsys.readouterr().out
    assert "warning:" in out and "annotation" in out
    assert "1 warning(s)" in out


def test_empty_trace_fails(tmp_path, capsys, validate_trace):
    path = tmp_path / "empty.jsonl"
    path.write_text("")
    assert validate_trace.main([str(path)]) == 1
    assert "empty trace" in capsys.readouterr().out


def test_unreadable_file_exits_2(tmp_path, validate_trace):
    assert validate_trace.main([str(tmp_path / "missing.jsonl")]) == 2


def test_real_cli_trace_validates(tmp_path, validate_trace):
    from repro.cli import main as cli_main

    trace = tmp_path / "t13.jsonl"
    assert cli_main(
        ["theorem13", "--max-arity", "1", "--max-atoms", "1",
         "--trace", str(trace)]
    ) == 0
    assert validate_trace.main([str(trace)]) == 0
    # Invariant under event-schema strictness too.
    assert validate_trace.main(["--lenient", str(trace)]) == 0


def _chrome(tmp_path, trace, name="trace.json"):
    path = tmp_path / name
    path.write_text(json.dumps(trace) + "\n")
    return path


def test_chrome_trace_is_sniffed_and_validated(tmp_path, capsys, validate_trace):
    from repro.obs.export import chrome_trace

    records = [
        _span("s0001", None, "scan", 0.0, 1.0),
        _span("s0002", "s0001", "pair", 0.2, 0.6),
    ]
    path = _chrome(tmp_path, chrome_trace(records))
    assert validate_trace.main([str(path)]) == 0
    out = capsys.readouterr().out
    assert "span_start=2" in out and "span_end=2" in out


def test_stitched_chrome_trace_with_lease_instants_validates(
    tmp_path, capsys, validate_trace
):
    from repro.obs.events import lease_event, trace_events
    from repro.obs.export import stitch_worker_events, stitched_chrome_trace

    traces = {
        owner: trace_events(
            [_span("s0001", None, "fabric.shard", 0.0, 1.0)],
            incidents=[
                lease_event("acquire", owner=owner, shard=0, wall=5.0, t=0.1)
            ],
        )
        for owner in ("w-a", "w-b", "w-c")
    }
    path = _chrome(
        tmp_path, stitched_chrome_trace(stitch_worker_events(traces))
    )
    assert validate_trace.main([str(path)]) == 0
    out = capsys.readouterr().out
    assert "lease=3" in out and "span_start=3" in out


def test_chrome_trace_with_invalid_instant_args_fails(
    tmp_path, capsys, validate_trace
):
    from repro.obs.export import chrome_trace

    trace = chrome_trace([_span()])
    trace["traceEvents"].append({
        "name": "lease.acquire", "cat": "lease", "ph": "i", "s": "g",
        "ts": 2e6, "pid": 0, "tid": 0,
        "args": {"v": 2, "type": "lease", "owner": "w1"},  # missing fields
    })
    path = _chrome(tmp_path, trace)
    assert validate_trace.main([str(path)]) == 1
    assert "missing required field" in capsys.readouterr().out


def test_chrome_file_with_broken_json_fails_not_crashes(
    tmp_path, capsys, validate_trace
):
    path = tmp_path / "broken.json"
    path.write_text('{"traceEvents": [')
    assert validate_trace.main([str(path)]) == 1
    assert "not valid JSON" in capsys.readouterr().out


def test_spanless_chrome_trace_is_an_empty_trace_violation(
    tmp_path, capsys, validate_trace
):
    path = _chrome(
        tmp_path, {"traceEvents": [], "displayTimeUnit": "ms"}
    )
    assert validate_trace.main([str(path)]) == 1
    assert "empty trace" in capsys.readouterr().out
