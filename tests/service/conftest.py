"""Shared fixtures for the service integration tests: one real server."""

import json
import urllib.error
import urllib.request

import pytest

from repro.engine import EngineConfig
from repro.service import ServiceConfig, ServiceThread

SCHEMA_A = "emp(ss*: SSN, name: Name)"
SCHEMA_B = "person(id*: SSN, nm: Name)"  # equivalent to A
SCHEMA_C = "person(id*: SSN, nm: Name, extra: Name)"  # not equivalent to A


class Client:
    """A tiny synchronous HTTP client over urllib (no new dependencies)."""

    def __init__(self, port: int) -> None:
        self.base = f"http://127.0.0.1:{port}"

    def get(self, path: str):
        try:
            with urllib.request.urlopen(self.base + path, timeout=30) as resp:
                return resp.status, resp.read()
        except urllib.error.HTTPError as exc:
            return exc.code, exc.read()

    def post(self, path: str, body: dict):
        request = urllib.request.Request(
            self.base + path,
            data=json.dumps(body).encode("utf-8"),
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(request, timeout=60) as resp:
                return resp.status, resp.read()
        except urllib.error.HTTPError as exc:
            return exc.code, exc.read()


@pytest.fixture(scope="module")
def service():
    """One live server shared by the module (real sockets, OS port)."""
    thread = ServiceThread(
        EngineConfig(max_atoms=1, request_workers=4),
        ServiceConfig(port=0, deadline=60.0),
    )
    with thread:
        yield thread


@pytest.fixture(scope="module")
def client(service):
    return Client(service.port)
