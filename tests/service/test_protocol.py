"""Unit tests for the service wire protocol (no sockets)."""

import pytest

from repro.service import (
    RequestError,
    canonical_bytes,
    parse_dominance_request,
    parse_equivalence_request,
    parse_mapping_request,
)
from repro.service.protocol import parse_body


def test_parse_body_rejects_non_object():
    with pytest.raises(RequestError):
        parse_body(b"[1, 2]")
    with pytest.raises(RequestError):
        parse_body(b"not json")


def test_parse_schema_pair_happy_path():
    parsed = parse_equivalence_request(
        {
            "schema1": "A(a*: T)",
            "schema2": "B(b*: T)",
            "max_atoms": 3,
            "deadline": 1.5,
        }
    )
    assert parsed.schema1.relation_names == ("A",)
    assert parsed.schema2.relation_names == ("B",)
    assert parsed.max_atoms == 3
    assert parsed.deadline == 1.5
    assert parsed.include_ddl is False


@pytest.mark.parametrize(
    "body",
    [
        {"schema2": "B(b*: T)"},  # missing schema1
        {"schema1": "", "schema2": "B(b*: T)"},  # empty
        {"schema1": "not a schema(", "schema2": "B(b*: T)"},  # unparsable
        {"schema1": "A(a*: T)", "schema2": "B(b*: T)", "max_atoms": 0},
        {"schema1": "A(a*: T)", "schema2": "B(b*: T)", "max_atoms": True},
        {"schema1": "A(a*: T)", "schema2": "B(b*: T)", "deadline": -1},
        {"schema1": "A(a*: T)", "schema2": "B(b*: T)", "deadline": "soon"},
    ],
)
def test_parse_schema_pair_rejections(body):
    with pytest.raises(RequestError):
        parse_dominance_request(body)


def test_parse_mapping_request_requires_all_fields():
    with pytest.raises(RequestError):
        parse_mapping_request({"source": "A(a*: T)", "target": "B(b*: T)"})


def test_canonical_bytes_is_stable():
    assert canonical_bytes({"b": 1, "a": [2]}) == b'{"a":[2],"b":1}\n'
    assert canonical_bytes({"a": [2], "b": 1}) == b'{"a":[2],"b":1}\n'
