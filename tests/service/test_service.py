"""Integration tests for the equivalence service (real sockets, live server)."""

import json
import socket
from concurrent.futures import ThreadPoolExecutor

from .conftest import SCHEMA_A, SCHEMA_B, SCHEMA_C


def _metric(client, name: str) -> float:
    status, body = client.get("/metrics")
    assert status == 200
    for line in body.decode().splitlines():
        if line.startswith(name + " "):
            return float(line.split()[1])
    return 0.0


def test_healthz_reports_config_and_cache(client):
    status, body = client.get("/healthz")
    assert status == 200
    payload = json.loads(body)
    assert payload["status"] == "ok"
    assert payload["engine"]["max_atoms"] == 1
    assert payload["deadline"] == 60.0
    assert set(payload["result_cache"]) == {"entries", "hits", "misses"}


def test_metrics_exposes_prometheus_text(client):
    status, body = client.get("/metrics")
    assert status == 200
    text = body.decode()
    assert "# TYPE" in text
    # Exposed series names are unique (the collision fix, end to end).
    exposed = [
        line.split()[0]
        for line in text.splitlines()
        if line and not line.startswith("#")
    ]
    assert len(exposed) == len(set(exposed))


def test_equivalence_positive_and_negative(client):
    status, body = client.post(
        "/v1/equivalence", {"schema1": SCHEMA_A, "schema2": SCHEMA_B}
    )
    assert status == 200
    payload = json.loads(body)
    assert payload["verdict"] == "ok"
    assert payload["equivalent"] is True
    status, body = client.post(
        "/v1/equivalence", {"schema1": SCHEMA_A, "schema2": SCHEMA_C}
    )
    assert json.loads(body)["equivalent"] is False


def test_second_identical_request_hits_cache_byte_identical(client):
    request = {"schema1": "R(a*: K, b: V)", "schema2": "S(x*: K, y: V)"}
    misses_before = _metric(client, "repro_engine_cache_misses")
    status1, body1 = client.post("/v1/dominance", request)
    hits_before = _metric(client, "repro_engine_cache_hits")
    status2, body2 = client.post("/v1/dominance", request)
    assert status1 == status2 == 200
    assert body1 == body2  # byte-identical payload from the warm cache
    assert _metric(client, "repro_engine_cache_hits") == hits_before + 1
    # The second request did not miss again: one miss total for this key.
    assert _metric(client, "repro_engine_cache_misses") == misses_before + 1


def test_concurrent_clients_mixed_hit_miss(client, service):
    """N parallel requests over two distinct questions, warm and cold."""
    pair_ok = {"schema1": "C1(a*: T, b: U)", "schema2": "D1(x*: T, y: U)"}
    pair_no = {"schema1": "C2(a*: T, b: U, z: U)", "schema2": "D2(x*: T, y: U)"}
    client.post("/v1/dominance", pair_ok)  # warm one of the two

    def ask(i):
        return client.post("/v1/dominance", pair_ok if i % 2 else pair_no)

    with ThreadPoolExecutor(max_workers=8) as pool:
        results = list(pool.map(ask, range(12)))
    assert all(status == 200 for status, _ in results)
    ok_bodies = {body for i, (_, body) in enumerate(results) if i % 2}
    no_bodies = {body for i, (_, body) in enumerate(results) if not i % 2}
    # Hits and misses of the same question are byte-identical.
    assert len(ok_bodies) == 1
    assert len(no_bodies) == 1
    assert json.loads(ok_bodies.pop())["found"] is True
    payload = json.loads(no_bodies.pop())
    assert payload["found"] is False
    assert payload["verdict"] == "ok"


def test_verdict_lines_byte_identical_to_cli(client, tmp_path):
    """The payload's lines are exactly the CLI's deterministic output."""
    import contextlib
    import io

    from repro.cli import main

    status, body = client.post(
        "/v1/dominance", {"schema1": SCHEMA_A, "schema2": SCHEMA_B}
    )
    assert status == 200
    payload = json.loads(body)

    file_a = tmp_path / "a.schema"
    file_b = tmp_path / "b.schema"
    file_a.write_text(SCHEMA_A + "\n")
    file_b.write_text(SCHEMA_B + "\n")
    out = io.StringIO()
    with contextlib.redirect_stdout(out):
        code = main(["search", str(file_a), str(file_b), "--max-atoms", "1"])
    assert code == 0
    cli_lines = [
        line for line in out.getvalue().splitlines()
        if not line.startswith("perf:")
    ]
    assert payload["lines"] == cli_lines


def test_deadline_expiry_returns_structured_timeout(client):
    """deadline=0 yields a clean timeout verdict, not a hung connection."""
    request = {
        "schema1": "T1(a*: T, b: U)",
        "schema2": "T2(x*: T, y: U, z: T)",
        "deadline": 0.0,
    }
    status, body = client.post("/v1/dominance", request)
    assert status == 200
    payload = json.loads(body)
    assert payload["verdict"] == "timeout"
    assert payload["found"] is False
    assert "search inconclusive" in payload["lines"][-1]
    # The timeout was never cached: the real answer is still computable.
    del request["deadline"]
    status, body = client.post("/v1/dominance", request)
    assert json.loads(body)["verdict"] == "ok"


def test_mapping_check_valid_and_error(client):
    status, body = client.post(
        "/v1/mapping-check",
        {
            "source": SCHEMA_A,
            "target": SCHEMA_B,
            "mapping": "person(X, Y) :- emp(X, Y).\n",
        },
    )
    assert status == 200
    payload = json.loads(body)
    assert payload["valid"] is True
    assert payload["per_relation"] == {"person": True}
    # A head naming a non-target relation is a 400 naming the head.
    status, body = client.post(
        "/v1/mapping-check",
        {
            "source": SCHEMA_A,
            "target": SCHEMA_B,
            "mapping": "nosuch(X) :- emp(X, Y).\n",
        },
    )
    assert status == 400
    assert "'nosuch'" in json.loads(body)["error"]


def test_include_ddl_echo(client):
    status, body = client.post(
        "/v1/equivalence",
        {"schema1": SCHEMA_A, "schema2": SCHEMA_B, "include_ddl": True},
    )
    assert status == 200
    payload = json.loads(body)
    assert "CREATE TABLE" in payload["ddl"]["schema1"]
    assert "CREATE TABLE" in payload["ddl"]["schema2"]


def test_error_statuses(client):
    assert client.get("/nope")[0] == 404
    assert client.get("/v1/equivalence")[0] == 405
    status, body = client.post("/v1/equivalence", {"schema1": "not a schema!!"})
    assert status == 400
    assert "error" in json.loads(body)
    status, _ = client.post("/v1/equivalence", {"schema1": SCHEMA_A})
    assert status == 400  # missing schema2


def test_sse_events_stream(client, service):
    """A /v1/events subscriber sees request/done events for a POST."""
    conn = socket.create_connection(("127.0.0.1", service.port), timeout=30)
    try:
        conn.sendall(b"GET /v1/events HTTP/1.1\r\nHost: t\r\n\r\n")
        buffered = b""
        while b"\r\n\r\n" not in buffered:  # response headers
            buffered += conn.recv(4096)
        assert b"text/event-stream" in buffered
        # Trigger activity while subscribed (fresh pair: a real run).
        status, _ = client.post(
            "/v1/dominance",
            {"schema1": "E1(a*: T)", "schema2": "E2(x*: T)"},
        )
        assert status == 200
        while b"event: done" not in buffered:
            chunk = conn.recv(4096)
            assert chunk, "event stream closed before done event"
            buffered += chunk
        assert b'"kind":"dominance"' in buffered
    finally:
        conn.close()
