"""Unit tests for the command-line interface."""

import pytest

from repro.cli import main

SCHEMA_A = """
emp(ss*: SSN, name: Name)
"""
SCHEMA_B = """
person(id*: SSN, nm: Name)
"""
SCHEMA_C = """
person(id*: SSN, nm: Name, extra: Name)
"""
SCHEMA_RS = """
R(a*: T, b: U)
S(c*: U, d: T)
"""


@pytest.fixture
def schema_files(tmp_path):
    paths = {}
    for name, text in [
        ("a", SCHEMA_A),
        ("b", SCHEMA_B),
        ("c", SCHEMA_C),
        ("rs", SCHEMA_RS),
    ]:
        path = tmp_path / f"{name}.schema"
        path.write_text(text)
        paths[name] = str(path)
    return paths


def test_equiv_positive(schema_files, capsys):
    code = main(["equiv", schema_files["a"], schema_files["b"], "--verify"])
    out = capsys.readouterr().out
    assert code == 0
    assert "equivalent" in out
    assert "certificate re-verifies: True" in out


def test_equiv_negative(schema_files, capsys):
    code = main(["equiv", schema_files["a"], schema_files["c"]])
    out = capsys.readouterr().out
    assert code == 1
    assert "NOT" in out


def test_contains_inline_queries(schema_files, capsys):
    code = main(
        [
            "contains",
            schema_files["rs"],
            "Q(X) :- R(X, Y), S(C, D), Y = C.",
            "Q(X) :- R(X, Y).",
        ]
    )
    assert code == 0
    assert "True" in capsys.readouterr().out


def test_contains_under_keys(schema_files, capsys):
    code = main(
        [
            "contains",
            schema_files["rs"],
            "--keys",
            "Q(Y, Y2) :- R(X, Y), R(X2, Y2), X = X2.",
            "Q(Y, Y) :- R(X, Y).",
        ]
    )
    assert code == 0


def test_contains_query_file(schema_files, tmp_path, capsys):
    qfile = tmp_path / "q1.cq"
    qfile.write_text("Q(X) :- R(X, Y).\n")
    code = main(
        ["contains", schema_files["rs"], str(qfile), "Q(X) :- R(X, Y)."]
    )
    assert code == 0


def test_minimize(schema_files, capsys):
    code = main(
        ["minimize", schema_files["rs"], "Q(X) :- R(X, Y), R(A, B)."]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert out.count("R(") == 1


def test_kappa(schema_files, capsys):
    code = main(["kappa", schema_files["rs"]])
    out = capsys.readouterr().out
    assert code == 0
    assert "R(a: T)" in out
    assert "S(c: U)" in out


def test_ddl(schema_files, capsys):
    code = main(["ddl", schema_files["rs"]])
    out = capsys.readouterr().out
    assert code == 0
    assert "CREATE TABLE" in out and "PRIMARY KEY" in out


def test_search_found(schema_files, capsys):
    code = main(
        ["search", schema_files["a"], schema_files["b"], "--max-atoms", "1"]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "witness found" in out


def test_search_one_way_dominance(schema_files, capsys):
    """A schema IS dominated by a larger one — only equivalence fails."""
    code = main(
        ["search", schema_files["a"], schema_files["c"], "--max-atoms", "1"]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "witness found" in out


def test_search_not_found(schema_files, capsys):
    """The reverse direction: the larger schema cannot be dominated by the
    smaller one (Lemmas 3 + 10 make it impossible)."""
    code = main(
        ["search", schema_files["c"], schema_files["a"], "--max-atoms", "1"]
    )
    out = capsys.readouterr().out
    assert code == 1
    assert "no witness" in out


def test_bad_input_exit_code_2(tmp_path, capsys):
    empty = tmp_path / "empty.schema"
    empty.write_text("")
    code = main(["equiv", str(empty), str(empty)])
    captured = capsys.readouterr()
    assert code == 2
    assert "error:" in captured.err


def test_missing_file_exit_code_2(capsys):
    code = main(["kappa", "/nonexistent/path.schema"])
    assert code == 2
    assert "error:" in capsys.readouterr().err


def test_trace_command(schema_files, capsys):
    code = main(["trace", schema_files["a"], schema_files["b"]])
    out = capsys.readouterr().out
    assert code == 0
    assert "Theorem 13 proof trace" in out
    assert "EQUIVALENT" in out


def test_trace_command_negative(schema_files, capsys):
    code = main(["trace", schema_files["a"], schema_files["c"]])
    out = capsys.readouterr().out
    assert code == 1
    assert "NOT equivalent" in out


def test_repair_command(schema_files, capsys):
    code = main(["repair", schema_files["a"], schema_files["c"]])
    out = capsys.readouterr().out
    assert code == 1
    assert "total edit cost: 1" in out


def test_repair_command_noop(schema_files, capsys):
    code = main(["repair", schema_files["a"], schema_files["b"]])
    out = capsys.readouterr().out
    assert code == 0
    assert "already equivalent" in out


def test_search_writes_witness_file(schema_files, tmp_path, capsys):
    out_file = tmp_path / "witness.map"
    code = main(
        [
            "search",
            schema_files["a"],
            schema_files["b"],
            "--max-atoms",
            "1",
            "--out",
            str(out_file),
        ]
    )
    assert code == 0
    content = out_file.read_text()
    assert ":-" in content and "#" in content


def test_search_prints_perf_line(schema_files, capsys):
    code = main(
        ["search", schema_files["a"], schema_files["b"], "--max-atoms", "1"]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "cache hits=" in out and "wall time=" in out


def test_search_with_workers(schema_files, capsys):
    code = main(
        [
            "search",
            schema_files["a"],
            schema_files["b"],
            "--max-atoms",
            "1",
            "--workers",
            "2",
        ]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "witness found" in out
    assert "workers=2" in out


def test_search_no_cache_no_index_same_verdict(schema_files, capsys):
    from repro.cq.homomorphism import indexing_enabled, set_indexing
    from repro.utils import memo

    try:
        code = main(
            [
                "search",
                schema_files["a"],
                schema_files["b"],
                "--max-atoms",
                "1",
                "--no-cache",
                "--no-index",
            ]
        )
        assert code == 0
        assert "witness found" in capsys.readouterr().out
        assert not memo.caches_enabled()
        assert not indexing_enabled()
    finally:
        memo.set_enabled(True)
        set_indexing(True)


def test_contains_no_cache_flag(schema_files, capsys):
    from repro.utils import memo

    try:
        code = main(
            [
                "contains",
                schema_files["rs"],
                "--no-cache",
                "Q(X) :- R(X, Y), S(C, D), Y = C.",
                "Q(X) :- R(X, Y).",
            ]
        )
        assert code == 0
        assert "True" in capsys.readouterr().out
    finally:
        memo.set_enabled(True)


def test_python_dash_m_entry_point(schema_files):
    """`python -m repro` works as a subprocess (the __main__ shim)."""
    import subprocess
    import sys

    completed = subprocess.run(
        [sys.executable, "-m", "repro", "equiv", schema_files["a"], schema_files["b"]],
        capture_output=True,
        text=True,
    )
    assert completed.returncode == 0
    assert "equivalent" in completed.stdout
