"""Unit tests for the command-line interface."""

import pytest

from repro.cli import main

SCHEMA_A = """
emp(ss*: SSN, name: Name)
"""
SCHEMA_B = """
person(id*: SSN, nm: Name)
"""
SCHEMA_C = """
person(id*: SSN, nm: Name, extra: Name)
"""
SCHEMA_RS = """
R(a*: T, b: U)
S(c*: U, d: T)
"""


@pytest.fixture
def schema_files(tmp_path):
    paths = {}
    for name, text in [
        ("a", SCHEMA_A),
        ("b", SCHEMA_B),
        ("c", SCHEMA_C),
        ("rs", SCHEMA_RS),
    ]:
        path = tmp_path / f"{name}.schema"
        path.write_text(text)
        paths[name] = str(path)
    return paths


def test_equiv_positive(schema_files, capsys):
    code = main(["equiv", schema_files["a"], schema_files["b"], "--verify"])
    out = capsys.readouterr().out
    assert code == 0
    assert "equivalent" in out
    assert "certificate re-verifies: True" in out


def test_equiv_negative(schema_files, capsys):
    code = main(["equiv", schema_files["a"], schema_files["c"]])
    out = capsys.readouterr().out
    assert code == 1
    assert "NOT" in out


def test_contains_inline_queries(schema_files, capsys):
    code = main(
        [
            "contains",
            schema_files["rs"],
            "Q(X) :- R(X, Y), S(C, D), Y = C.",
            "Q(X) :- R(X, Y).",
        ]
    )
    assert code == 0
    assert "True" in capsys.readouterr().out


def test_contains_under_keys(schema_files, capsys):
    code = main(
        [
            "contains",
            schema_files["rs"],
            "--keys",
            "Q(Y, Y2) :- R(X, Y), R(X2, Y2), X = X2.",
            "Q(Y, Y) :- R(X, Y).",
        ]
    )
    assert code == 0


def test_contains_query_file(schema_files, tmp_path, capsys):
    qfile = tmp_path / "q1.cq"
    qfile.write_text("Q(X) :- R(X, Y).\n")
    code = main(
        ["contains", schema_files["rs"], str(qfile), "Q(X) :- R(X, Y)."]
    )
    assert code == 0


def test_minimize(schema_files, capsys):
    code = main(
        ["minimize", schema_files["rs"], "Q(X) :- R(X, Y), R(A, B)."]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert out.count("R(") == 1


def test_kappa(schema_files, capsys):
    code = main(["kappa", schema_files["rs"]])
    out = capsys.readouterr().out
    assert code == 0
    assert "R(a: T)" in out
    assert "S(c: U)" in out


def test_ddl(schema_files, capsys):
    code = main(["ddl", schema_files["rs"]])
    out = capsys.readouterr().out
    assert code == 0
    assert "CREATE TABLE" in out and "PRIMARY KEY" in out


def test_search_found(schema_files, capsys):
    code = main(
        ["search", schema_files["a"], schema_files["b"], "--max-atoms", "1"]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "witness found" in out


def test_search_one_way_dominance(schema_files, capsys):
    """A schema IS dominated by a larger one — only equivalence fails."""
    code = main(
        ["search", schema_files["a"], schema_files["c"], "--max-atoms", "1"]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "witness found" in out


def test_search_not_found(schema_files, capsys):
    """The reverse direction: the larger schema cannot be dominated by the
    smaller one (Lemmas 3 + 10 make it impossible)."""
    code = main(
        ["search", schema_files["c"], schema_files["a"], "--max-atoms", "1"]
    )
    out = capsys.readouterr().out
    assert code == 1
    assert "no witness" in out


def test_bad_input_exit_code_2(tmp_path, capsys):
    empty = tmp_path / "empty.schema"
    empty.write_text("")
    code = main(["equiv", str(empty), str(empty)])
    captured = capsys.readouterr()
    assert code == 2
    assert "error:" in captured.err


def test_missing_file_exit_code_2(capsys):
    code = main(["kappa", "/nonexistent/path.schema"])
    assert code == 2
    assert "error:" in capsys.readouterr().err


def test_trace_command(schema_files, capsys):
    code = main(["trace", schema_files["a"], schema_files["b"]])
    out = capsys.readouterr().out
    assert code == 0
    assert "Theorem 13 proof trace" in out
    assert "EQUIVALENT" in out


def test_trace_command_negative(schema_files, capsys):
    code = main(["trace", schema_files["a"], schema_files["c"]])
    out = capsys.readouterr().out
    assert code == 1
    assert "NOT equivalent" in out


def test_repair_command(schema_files, capsys):
    code = main(["repair", schema_files["a"], schema_files["c"]])
    out = capsys.readouterr().out
    assert code == 1
    assert "total edit cost: 1" in out


def test_repair_command_noop(schema_files, capsys):
    code = main(["repair", schema_files["a"], schema_files["b"]])
    out = capsys.readouterr().out
    assert code == 0
    assert "already equivalent" in out


def test_search_writes_witness_file(schema_files, tmp_path, capsys):
    out_file = tmp_path / "witness.map"
    code = main(
        [
            "search",
            schema_files["a"],
            schema_files["b"],
            "--max-atoms",
            "1",
            "--out",
            str(out_file),
        ]
    )
    assert code == 0
    content = out_file.read_text()
    assert ":-" in content and "#" in content


def test_search_prints_perf_line(schema_files, capsys):
    code = main(
        ["search", schema_files["a"], schema_files["b"], "--max-atoms", "1"]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "cache hits=" in out and "wall time=" in out


def test_search_with_workers(schema_files, capsys):
    code = main(
        [
            "search",
            schema_files["a"],
            schema_files["b"],
            "--max-atoms",
            "1",
            "--workers",
            "2",
        ]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "witness found" in out
    assert "workers=2" in out


def test_search_no_cache_no_index_same_verdict(schema_files, capsys):
    from repro.cq.homomorphism import indexing_enabled, set_indexing
    from repro.utils import memo

    try:
        code = main(
            [
                "search",
                schema_files["a"],
                schema_files["b"],
                "--max-atoms",
                "1",
                "--no-cache",
                "--no-index",
            ]
        )
        assert code == 0
        assert "witness found" in capsys.readouterr().out
        assert not memo.caches_enabled()
        assert not indexing_enabled()
    finally:
        memo.set_enabled(True)
        set_indexing(True)


def test_contains_no_cache_flag(schema_files, capsys):
    from repro.utils import memo

    try:
        code = main(
            [
                "contains",
                schema_files["rs"],
                "--no-cache",
                "Q(X) :- R(X, Y), S(C, D), Y = C.",
                "Q(X) :- R(X, Y).",
            ]
        )
        assert code == 0
        assert "True" in capsys.readouterr().out
    finally:
        memo.set_enabled(True)


def test_search_perf_line_shows_evictions_hides_workers(schema_files, capsys):
    """Sequential runs include evictions but no workers= suffix."""
    code = main(
        ["search", schema_files["a"], schema_files["b"], "--max-atoms", "1"]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "cache evictions=" in out
    assert "workers=" not in out


def test_theorem13_holds(capsys):
    code = main(["theorem13", "--max-arity", "2", "--max-atoms", "1"])
    out = capsys.readouterr().out
    assert code == 0
    assert "universe:" in out
    assert "[ok ]" in out
    assert "Theorem 13 prediction HOLDS on every pair" in out
    assert "perf: cache hits=" in out


def test_theorem13_profile_table(capsys):
    code = main(
        ["theorem13", "--max-arity", "1", "--max-atoms", "1", "--profile"]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "per-phase timings" in out
    assert "theorem13" in out  # the root span appears as a phase row
    assert "TOTAL" in out


def test_theorem13_profile_self_times_sum_to_wall(capsys):
    """Acceptance: phase self-times tile the root span's wall time."""
    from repro import obs
    from repro.obs import tracing

    previous = tracing.set_enabled(True)
    tracing.start_trace()
    try:
        code = main(["theorem13", "--max-arity", "1", "--max-atoms", "1"])
        records = tracing.records()
    finally:
        tracing.set_enabled(previous)
        tracing.start_trace()
    assert code == 0
    summary = obs.fold(records)
    roots = [r for r in records if r.parent_id is None and r.proc == ""]
    root_total = sum(r.duration for r in roots)
    assert summary.total_self_s == pytest.approx(root_total, rel=1e-6)


def test_theorem13_trace_is_schema_valid(tmp_path, capsys):
    from repro.obs.events import validate_line

    trace = tmp_path / "trace.jsonl"
    code = main(
        [
            "theorem13",
            "--max-arity",
            "2",
            "--max-atoms",
            "1",
            "--trace",
            str(trace),
        ]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert f"trace written to {trace}" in out
    lines = trace.read_text().splitlines()
    assert lines
    for line in lines:
        assert validate_line(line) == [], line
    import json

    types = {json.loads(line)["type"] for line in lines}
    assert types == {"span_start", "span_end", "counter", "search_verdict"}


def test_theorem13_parallel_trace_has_worker_spans(tmp_path, capsys):
    import json

    trace = tmp_path / "trace.jsonl"
    code = main(
        [
            "theorem13",
            "--max-arity",
            "2",
            "--max-atoms",
            "1",
            "--workers",
            "2",
            "--trace",
            str(trace),
        ]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "workers=2" in out
    procs = {
        json.loads(line).get("proc")
        for line in trace.read_text().splitlines()
        if json.loads(line)["type"].startswith("span_")
    }
    assert "" in procs
    assert any(p and p.startswith("w") for p in procs)


def test_search_metrics_json(schema_files, tmp_path, capsys):
    import json

    metrics_file = tmp_path / "metrics.json"
    code = main(
        [
            "search",
            schema_files["a"],
            schema_files["b"],
            "--max-atoms",
            "1",
            "--metrics-json",
            str(metrics_file),
        ]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert f"metrics written to {metrics_file}" in out
    payload = json.loads(metrics_file.read_text())
    assert payload["v"] == 2  # rides the event-schema version (fleet bump)
    assert any(name.startswith("cache.") for name in payload["metrics"])


def test_search_trace_flag(schema_files, tmp_path, capsys):
    from repro.obs.events import validate_line

    trace = tmp_path / "search.jsonl"
    code = main(
        [
            "search",
            schema_files["a"],
            schema_files["b"],
            "--max-atoms",
            "1",
            "--trace",
            str(trace),
        ]
    )
    assert code == 0
    lines = trace.read_text().splitlines()
    assert all(validate_line(line) == [] for line in lines)
    import json

    names = {
        json.loads(line)["name"]
        for line in lines
        if json.loads(line)["type"] == "span_start"
    }
    assert "search" in names and "search.dominance" in names


def test_python_dash_m_entry_point(schema_files):
    """`python -m repro` works as a subprocess (the __main__ shim)."""
    import subprocess
    import sys

    completed = subprocess.run(
        [sys.executable, "-m", "repro", "equiv", schema_files["a"], schema_files["b"]],
        capture_output=True,
        text=True,
    )
    assert completed.returncode == 0
    assert "equivalent" in completed.stdout


def test_theorem13_prints_verdict_summary_line(capsys):
    code = main(["theorem13", "--max-arity", "1", "--max-atoms", "1"])
    out = capsys.readouterr().out
    assert code == 0
    assert "verdicts: ok=1 timeout=0 unknown=0" in out


def test_theorem13_html_report_byte_matches_cli_verdict_line(tmp_path, capsys):
    report = tmp_path / "out.html"
    code = main(
        ["theorem13", "--max-arity", "2", "--max-atoms", "1",
         "--html-report", str(report)]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert f"html report written to {report}" in out
    cli_line = next(
        line for line in out.splitlines() if line.startswith("verdicts: ")
    )
    html = report.read_text()
    # The acceptance contract: the dashboard embeds the CLI's verdict
    # census byte-for-byte.
    assert cli_line in html
    assert html.startswith("<!DOCTYPE html>")
    assert "<script" not in html


def test_theorem13_chrome_trace_is_loadable_and_lossless(tmp_path, capsys):
    import json

    from repro.obs.export import spans_from_chrome

    trace_path = tmp_path / "out.trace.json"
    code = main(
        ["theorem13", "--max-arity", "1", "--max-atoms", "1",
         "--export-chrome-trace", str(trace_path)]
    )
    assert code == 0
    assert f"chrome trace written to {trace_path}" in capsys.readouterr().out
    trace = json.loads(trace_path.read_text())
    assert trace["displayTimeUnit"] == "ms"
    spans = spans_from_chrome(trace)
    assert {record.name for record in spans} >= {"theorem13", "theorem13.scan"}
    phases = {e["ph"] for e in trace["traceEvents"]}
    assert "X" in phases and "M" in phases


def test_theorem13_profile_hz_reports_samples(tmp_path, capsys):
    code = main(
        ["theorem13", "--max-arity", "2", "--max-atoms", "1",
         "--profile-hz", "997"]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "profiler:" in out and "at 997 Hz" in out


def test_theorem13_prometheus_out(tmp_path, capsys):
    prom = tmp_path / "metrics.prom"
    code = main(
        ["theorem13", "--max-arity", "1", "--max-atoms", "1",
         "--prometheus-out", str(prom)]
    )
    assert code == 0
    assert f"prometheus metrics written to {prom}" in capsys.readouterr().out
    text = prom.read_text()
    assert "# TYPE repro_" in text
    # Lossless: the dotted original name rides in the HELP line.
    assert "repro metric `" in text


def test_theorem13_progress_line_on_stderr(capsys):
    code = main(
        ["theorem13", "--max-arity", "2", "--max-atoms", "1", "--progress"]
    )
    captured = capsys.readouterr()
    assert code == 0
    assert "scan 6/6 100.0%" in captured.err
    assert "scan" not in captured.out.splitlines()[0]


def test_metrics_json_includes_incidents_and_pair_timeouts(schema_files, tmp_path, capsys):
    import json

    metrics_file = tmp_path / "metrics.json"
    code = main(
        [
            "search",
            schema_files["a"],
            schema_files["b"],
            "--max-atoms",
            "1",
            "--metrics-json",
            str(metrics_file),
        ]
    )
    assert code == 0
    payload = json.loads(metrics_file.read_text())
    # The enriched shape: schema version, metrics, incident census,
    # pair-timeout total, hypergraph statistics, backend dispatch
    # census, scan-fabric census — regression-pinned here.
    assert set(payload) == {
        "v", "metrics", "incidents", "pair_timeouts", "hypergraph",
        "backends", "fabric",
    }
    assert payload["incidents"] == {"total": 0, "by_type": {}}
    assert payload["pair_timeouts"] == 0
    assert any(name.startswith("cache.") for name in payload["metrics"])
    hyper = payload["hypergraph"]
    assert hyper["plans_compiled"] >= 1
    assert 0.0 <= hyper["acyclic_fraction"] <= 1.0
    assert hyper["mean_atoms"] >= 1.0
    assert sum(payload["backends"].values()) >= 1


def test_metrics_json_counts_pair_timeouts(tmp_path, capsys):
    import json

    metrics_file = tmp_path / "metrics.json"
    code = main(
        ["theorem13", "--max-arity", "2", "--max-atoms", "2",
         "--pair-deadline", "0.0000001",
         "--metrics-json", str(metrics_file)]
    )
    out = capsys.readouterr().out
    assert code == 3  # undecided pairs → inconclusive exit
    payload = json.loads(metrics_file.read_text())
    assert payload["pair_timeouts"] > 0
    assert "unknown" in out
