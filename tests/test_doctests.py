"""Run the doctests embedded in module docstrings.

Several utility classes carry ``>>>`` examples; executing them here keeps
the examples honest as the code evolves.
"""

import doctest

import pytest

import repro.relational.domain
import repro.utils.fresh
import repro.utils.unionfind

MODULES = [
    repro.utils.unionfind,
    repro.utils.fresh,
    repro.relational.domain,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{results.failed} doctest failure(s) in {module.__name__}"
    assert results.attempted > 0, f"no doctests found in {module.__name__}"
