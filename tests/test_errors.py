"""Unit tests for the exception hierarchy."""

import pytest

from repro.errors import (
    ChaseError,
    ChaseFailure,
    DependencyError,
    EvaluationError,
    InstanceError,
    MappingError,
    QuerySyntaxError,
    ReproError,
    SchemaError,
    SearchBudgetExceeded,
    TypecheckError,
    TypeMismatchError,
)

ALL_ERRORS = [
    ChaseError,
    ChaseFailure,
    DependencyError,
    EvaluationError,
    InstanceError,
    MappingError,
    QuerySyntaxError,
    SchemaError,
    SearchBudgetExceeded,
    TypecheckError,
    TypeMismatchError,
]


def test_all_errors_derive_from_repro_error():
    for error_class in ALL_ERRORS:
        assert issubclass(error_class, ReproError)


def test_type_mismatch_is_a_schema_error():
    assert issubclass(TypeMismatchError, SchemaError)


def test_catching_the_base_class():
    with pytest.raises(ReproError):
        raise QuerySyntaxError("boom")


def test_library_raises_its_own_errors_only():
    """Representative API misuses raise ReproError subclasses, never bare
    ValueError/KeyError leaking implementation details."""
    from repro.cq import parse_query
    from repro.relational import parse_schema, relation

    with pytest.raises(ReproError):
        parse_schema("")
    with pytest.raises(ReproError):
        parse_query("nonsense((")
    with pytest.raises(ReproError):
        relation("R", [])
    schema, _ = parse_schema("R(a*: T)")
    with pytest.raises(ReproError):
        schema.relation("missing")
