"""Unit tests for attribute migration (the paper's §1 example)."""

import pytest

from repro.errors import DependencyError, SchemaError
from repro.relational import is_isomorphic
from repro.transform import AttributeMigration, MigrationSpec
from repro.workloads import (
    integration_instance,
    paper_migration_spec,
    paper_schema_1,
    paper_schema_1_prime,
)


@pytest.fixture
def migration():
    schema1, inclusions = paper_schema_1()
    return AttributeMigration(schema1, inclusions, paper_migration_spec())


def test_migrated_schema_matches_paper(migration):
    result = migration.apply()
    expected, _ = paper_schema_1_prime()
    assert is_isomorphic(result.schema, expected)


def test_round_trip_on_consistent_instance(migration):
    result = migration.apply()
    for seed in range(3):
        d = integration_instance(seed=seed, employees=7)
        assert d.satisfies_keys()
        image = result.alpha.apply(d)
        assert image.satisfies_keys()
        assert result.beta.apply(image) == d


def test_exact_audit(migration):
    audit = migration.audit()
    assert audit.round_trip_old
    assert audit.round_trip_new
    # The paper's point: with keys only, the schemas are NOT equivalent.
    assert not audit.equivalent_without_inclusions


def test_migration_requires_mutual_inclusion():
    schema1, inclusions = paper_schema_1()
    # Drop one direction of the mutual inclusion.
    pruned = tuple(
        inc
        for inc in inclusions
        if not (inc.source == "employee" and inc.target == "salespeople")
    )
    with pytest.raises(DependencyError):
        AttributeMigration(schema1, pruned, paper_migration_spec())


def test_migration_rejects_key_attribute():
    schema1, inclusions = paper_schema_1()
    spec = MigrationSpec(
        source="salespeople",
        target="employee",
        attribute="ss",
        source_key=("ss",),
        target_key=("ss",),
    )
    with pytest.raises(SchemaError):
        AttributeMigration(schema1, inclusions, spec)


def test_migration_rejects_name_clash():
    schema1, inclusions = paper_schema_1()
    spec = MigrationSpec(
        source="employee",
        target="salespeople",
        attribute="eName",
        source_key=("ss",),
        target_key=("ss",),
    )
    # salespeople has no eName, so this direction is fine structurally; the
    # reverse (migrating yearsExp onto employee twice) must clash.
    migration = AttributeMigration(schema1, inclusions, spec)
    result = migration.apply()
    assert result.schema.relation("salespeople").has_attribute("eName")


def test_migration_rejects_missing_attribute():
    schema1, inclusions = paper_schema_1()
    spec = MigrationSpec(
        source="salespeople",
        target="employee",
        attribute="nope",
        source_key=("ss",),
        target_key=("ss",),
    )
    with pytest.raises(SchemaError):
        AttributeMigration(schema1, inclusions, spec)


def test_migration_rejects_wrong_key_spec():
    schema1, inclusions = paper_schema_1()
    spec = MigrationSpec(
        source="salespeople",
        target="employee",
        attribute="yearsExp",
        source_key=("yearsExp",),
        target_key=("ss",),
    )
    with pytest.raises(SchemaError):
        AttributeMigration(schema1, inclusions, spec)


def test_new_schema_keeps_other_relations(migration):
    result = migration.apply()
    assert result.schema.relation("department") == migration.schema.relation(
        "department"
    )
    assert result.schema.relation("salespeople").arity == 1
    assert result.schema.relation("employee").arity == 5
