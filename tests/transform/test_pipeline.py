"""Unit tests for transformation pipelines."""

import pytest

from repro.errors import MappingError
from repro.relational import parse_schema, random_instance
from repro.transform import (
    AttributeMigration,
    TransformationPipeline,
    rename_attribute,
    rename_relation,
)
from repro.workloads import (
    integration_instance,
    paper_migration_spec,
    paper_schema_1,
)


def test_empty_pipeline_current_is_base():
    s, _ = parse_schema("R(a*: T)")
    pipeline = TransformationPipeline(s)
    assert pipeline.current == s
    with pytest.raises(MappingError):
        pipeline.forward_mapping()


def test_renaming_steps_round_trip():
    s, _ = parse_schema("R(a*: T, b: U)")
    pipeline = TransformationPipeline(s)
    step1 = rename_relation(s, "R", "Person")
    pipeline.add_renaming("rename R to Person", step1)
    step2 = rename_attribute(pipeline.current, "Person", "a", "id")
    pipeline.add_renaming("rename a to id", step2)
    assert pipeline.current.relation("Person").has_attribute("id")
    for seed in range(3):
        d = random_instance(s, rows_per_relation=4, seed=seed)
        assert pipeline.round_trip(d) == d


def test_mixed_pipeline_with_migration():
    schema1, inclusions = paper_schema_1()
    pipeline = TransformationPipeline(schema1)
    migration = AttributeMigration(schema1, inclusions, paper_migration_spec())
    result = migration.apply()
    pipeline.add_step("migrate yearsExp", result.alpha, result.beta)
    renamed = rename_relation(pipeline.current, "employee", "staff")
    pipeline.add_renaming("rename employee", renamed)
    assert pipeline.current.has_relation("staff")
    d = integration_instance(seed=1, employees=6)
    assert pipeline.round_trip(d) == d


def test_add_step_schema_mismatch():
    s, _ = parse_schema("R(a*: T)")
    other, _ = parse_schema("P(x*: T)")
    pipeline = TransformationPipeline(s)
    renamed = rename_relation(other, "P", "Q0")
    with pytest.raises(MappingError):
        pipeline.add_renaming("bad", renamed)


def test_steps_recorded():
    s, _ = parse_schema("R(a*: T)")
    pipeline = TransformationPipeline(s)
    pipeline.add_renaming("step1", rename_relation(s, "R", "X"))
    assert len(pipeline.steps) == 1
    assert pipeline.steps[0].description == "step1"
