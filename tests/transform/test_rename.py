"""Unit tests for renaming/re-ordering transformations."""

import pytest

from repro.errors import SchemaError
from repro.relational import is_isomorphic, parse_schema
from repro.transform import (
    compose_witnesses,
    rename_attribute,
    rename_relation,
    reorder_attributes,
    reorder_relations,
)


@pytest.fixture
def s():
    s, _ = parse_schema("R(a*: T, b: U)\nS(c*: U)")
    return s


def test_rename_relation(s):
    result = rename_relation(s, "R", "Renamed")
    assert result.schema.has_relation("Renamed")
    assert not result.schema.has_relation("R")
    assert result.witness.verify()
    assert is_isomorphic(s, result.schema)


def test_rename_relation_clash_rejected(s):
    with pytest.raises(SchemaError):
        rename_relation(s, "R", "S")


def test_rename_attribute(s):
    result = rename_attribute(s, "R", "a", "id")
    rel = result.schema.relation("R")
    assert rel.has_attribute("id") and not rel.has_attribute("a")
    assert rel.key == frozenset({"id"})
    assert result.witness.verify()


def test_rename_attribute_clash_rejected(s):
    with pytest.raises(SchemaError):
        rename_attribute(s, "R", "a", "b")
    with pytest.raises(SchemaError):
        rename_attribute(s, "R", "zz", "b2")


def test_reorder_attributes(s):
    result = reorder_attributes(s, "R", ["b", "a"])
    assert [a.name for a in result.schema.relation("R").attributes] == ["b", "a"]
    assert result.witness.verify()


def test_reorder_relations(s):
    result = reorder_relations(s, ["S", "R"])
    assert result.schema.relation_names == ("S", "R")
    assert result.witness.verify()
    with pytest.raises(SchemaError):
        reorder_relations(s, ["S"])


def test_compose_witnesses(s):
    first = rename_relation(s, "R", "X1")
    second = rename_attribute(first.schema, "X1", "a", "id")
    composed = compose_witnesses(first.witness, second.witness)
    assert composed.verify()
    assert composed.source == s
    assert composed.target == second.schema
    assert composed.relation_map["R"] == "X1"
    assert composed.attribute_maps["R"]["a"] == "id"


def test_compose_witnesses_mismatch(s):
    first = rename_relation(s, "R", "X1")
    with pytest.raises(SchemaError):
        compose_witnesses(first.witness, first.witness)
