"""Unit tests for schema repair plans."""

from repro.core import cq_equivalent
from repro.relational import parse_schema
from repro.transform.repair import repair_plan
from repro.workloads import paper_schema_1, paper_schema_1_prime


def test_noop_plan_for_equivalent(isomorphic_pair):
    s1, s2 = isomorphic_pair
    plan = repair_plan(s1, s2)
    assert plan.is_noop
    assert plan.cost == 0
    assert "already equivalent" in plan.render()


def test_plan_reports_attribute_addition():
    s1, _ = parse_schema("R(a*: T)")
    s2, _ = parse_schema("P(x*: T, y: U)")
    plan = repair_plan(s1, s2)
    assert not plan.is_noop
    assert plan.cost == 1
    [edit] = [e for e in plan.edits if e.action == "modify"]
    assert edit.add_nonkeys == ("U",)
    assert "add non-key" in plan.render()


def test_plan_reports_attribute_removal():
    s1, _ = parse_schema("R(a*: T, b: U, c: U)")
    s2, _ = parse_schema("P(x*: T, y: U)")
    plan = repair_plan(s1, s2)
    assert plan.cost == 1
    [edit] = [e for e in plan.edits if e.action == "modify"]
    assert edit.remove_nonkeys == ("U",)


def test_plan_drop_and_add_relations():
    s1, _ = parse_schema("R(a*: T)\nS(b*: U)")
    s2, _ = parse_schema("R(a*: T)\nQ0(c*: V)")
    plan = repair_plan(s1, s2)
    actions = sorted(e.action for e in plan.edits)
    assert actions == ["add", "drop", "keep"]
    assert "drop relation S" in plan.render()


def test_plan_on_paper_scenario_is_the_migration():
    """The §1 repair plan is exactly: move yearsExp between the relations."""
    s1, _ = paper_schema_1()
    s1p, _ = paper_schema_1_prime()
    plan = repair_plan(s1, s1p)
    assert plan.cost == 2  # one removal + one addition of a Years attribute
    modified = {e.source_relation: e for e in plan.edits if e.action == "modify"}
    assert modified["employee"].add_nonkeys == ("Years",)
    assert modified["salespeople"].remove_nonkeys == ("Years",)


def test_zero_cost_plan_iff_equivalent():
    cases = [
        ("R(a*: T, b: U)", "P(x*: T, y: U)", True),
        ("R(a*: T, b: U)", "P(x*: T, y: T)", False),
        ("R(a*: T)", "P(x*: T, y: U)", False),
    ]
    for text1, text2, expected in cases:
        s1, _ = parse_schema(text1)
        s2, _ = parse_schema(text2)
        plan = repair_plan(s1, s2)
        assert plan.is_noop == expected == cq_equivalent(s1, s2)
