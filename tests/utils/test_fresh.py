"""Unit tests for the fresh-name/value generators."""

from repro.utils.fresh import FreshNames, FreshValues, fresh_stream


def test_fresh_names_avoid_initial_set():
    gen = FreshNames(prefix="X", avoid={"X0", "X1"})
    assert gen.next() == "X2"


def test_fresh_names_never_repeat():
    gen = FreshNames(prefix="v")
    produced = gen.take(100)
    assert len(set(produced)) == 100


def test_fresh_names_avoid_added_later():
    gen = FreshNames(prefix="v")
    gen.avoid(["v0", "v1", "v2"])
    assert gen.next() == "v3"


def test_fresh_names_iterator_protocol():
    gen = FreshNames(prefix="n")
    stream = iter(gen)
    assert next(stream) == "n0"
    assert next(stream) == "n1"


def test_fresh_values_avoid():
    gen = FreshValues(avoid={0, 1, 2})
    assert gen.next() == 3


def test_fresh_values_never_repeat():
    gen = FreshValues()
    assert len(set(gen.take(50))) == 50


def test_fresh_values_start():
    gen = FreshValues(start=10)
    assert gen.next() == 10


def test_fresh_stream_unbounded_prefixed():
    stream = fresh_stream("p")
    assert [next(stream) for _ in range(3)] == ["p0", "p1", "p2"]
