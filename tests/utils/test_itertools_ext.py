"""Unit tests for the combinatorial helpers."""

import pytest

from repro.errors import SearchBudgetExceeded
from repro.utils.itertools_ext import (
    all_bijections,
    all_functions,
    all_injections,
    bounded_product,
    distinct_pairs,
    multiset,
    partitions,
    powerset,
)


def test_all_functions_counts():
    functions = list(all_functions([1, 2], ["a", "b", "c"]))
    assert len(functions) == 9  # 3^2


def test_all_functions_empty_domain():
    assert list(all_functions([], ["a"])) == [{}]


def test_all_functions_empty_codomain():
    assert list(all_functions([1], [])) == []


def test_all_injections_counts():
    injections = list(all_injections([1, 2], ["a", "b", "c"]))
    assert len(injections) == 6  # 3 * 2
    for injection in injections:
        assert len(set(injection.values())) == 2


def test_all_bijections_requires_equal_sizes():
    assert list(all_bijections([1, 2], ["a"])) == []
    assert len(list(all_bijections([1, 2], ["a", "b"]))) == 2


def test_powerset_sizes():
    subsets = list(powerset([1, 2, 3]))
    assert len(subsets) == 8
    assert () in subsets and (1, 2, 3) in subsets


def test_powerset_bounded():
    subsets = list(powerset([1, 2, 3], min_size=1, max_size=2))
    assert all(1 <= len(s) <= 2 for s in subsets)
    assert len(subsets) == 6


def test_multiset_is_order_insensitive():
    assert multiset([1, 2, 2]) == multiset([2, 1, 2])
    assert multiset([1, 2]) != multiset([1, 2, 2])


def test_multiset_is_hashable():
    hash(multiset(["a", "b", "a"]))


def test_bounded_product_within_budget():
    combos = list(bounded_product([[1, 2], [3, 4]], budget=4))
    assert len(combos) == 4


def test_bounded_product_exceeds_budget():
    with pytest.raises(SearchBudgetExceeded):
        list(bounded_product([[1, 2], [3, 4]], budget=3))


def test_distinct_pairs():
    assert list(distinct_pairs([1, 2, 3])) == [(1, 2), (1, 3), (2, 3)]


def test_partitions_bell_numbers():
    # Bell numbers: B(0)=1, B(1)=1, B(2)=2, B(3)=5, B(4)=15.
    for n, bell in [(0, 1), (1, 1), (2, 2), (3, 5), (4, 15)]:
        assert len(list(partitions(list(range(n))))) == bell


def test_partitions_cover_all_elements():
    for partition in partitions([1, 2, 3]):
        flat = sorted(x for block in partition for x in block)
        assert flat == [1, 2, 3]
