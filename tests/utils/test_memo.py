"""Unit tests for the bounded memoization layer (:mod:`repro.utils.memo`)."""

import pytest

from repro.utils import memo


@pytest.fixture(autouse=True)
def _enabled_memo():
    """Each test starts with the memo layer on and leaves it on."""
    previous = memo.set_enabled(True)
    yield
    memo.set_enabled(previous)


def test_miss_then_hit():
    cache = memo.Memo("t-basic")
    calls = []
    assert cache.get_or_compute("k", lambda: calls.append(1) or 41) == 41
    assert cache.get_or_compute("k", lambda: calls.append(1) or 99) == 41
    assert len(calls) == 1
    assert cache.stats.hits == 1
    assert cache.stats.misses == 1


def test_none_results_are_cached():
    """A computed ``None`` is a value, not a cache miss."""
    cache = memo.Memo("t-none")
    calls = []
    assert cache.get_or_compute("k", lambda: calls.append(1)) is None
    assert cache.get_or_compute("k", lambda: calls.append(1)) is None
    assert len(calls) == 1


def test_lru_bound_evicts_oldest():
    cache = memo.Memo("t-lru", maxsize=2)
    cache.get_or_compute("a", lambda: 1)
    cache.get_or_compute("b", lambda: 2)
    cache.get_or_compute("a", lambda: -1)  # refresh a: b is now oldest
    cache.get_or_compute("c", lambda: 3)  # evicts b
    assert len(cache) == 2
    assert cache.stats.evictions == 1
    calls = []
    assert cache.get_or_compute("a", lambda: calls.append(1) or -1) == 1
    assert cache.get_or_compute("b", lambda: calls.append(1) or -2) == -2
    assert len(calls) == 1  # a was retained, b recomputed


def test_maxsize_must_be_positive():
    with pytest.raises(ValueError):
        memo.Memo("t-bad", maxsize=0)


def test_disable_bypasses_storage_and_counters():
    cache = memo.Memo("t-disabled")
    previous = memo.set_enabled(False)
    try:
        calls = []
        assert cache.get_or_compute("k", lambda: calls.append(1) or 7) == 7
        assert cache.get_or_compute("k", lambda: calls.append(1) or 8) == 8
        assert len(calls) == 2
        assert len(cache) == 0
        assert cache.stats.hits == 0 and cache.stats.misses == 0
    finally:
        memo.set_enabled(previous)
    # Re-enabling resumes normal caching.
    assert cache.get_or_compute("k", lambda: 9) == 9
    assert cache.get_or_compute("k", lambda: 10) == 9


def test_set_enabled_returns_previous():
    assert memo.set_enabled(False) is True
    assert memo.caches_enabled() is False
    assert memo.set_enabled(True) is False
    assert memo.caches_enabled() is True


def test_registry_shares_instances():
    first = memo.memo("t-shared", maxsize=10)
    second = memo.memo("t-shared", maxsize=999)
    assert first is second
    assert second.maxsize == 10  # first registration wins


def test_registry_stats_and_clear():
    cache = memo.memo("t-registry-stats")
    cache.get_or_compute("k", lambda: 1)
    cache.get_or_compute("k", lambda: 1)
    stats = memo.all_stats()["t-registry-stats"]
    assert stats["hits"] >= 1 and stats["misses"] >= 1
    hits, misses = memo.global_counters()
    assert hits >= 1 and misses >= 1
    memo.clear_all()
    assert len(cache) == 0
    # Counters survive clear_all; reset_counters zeroes them.
    assert cache.stats.misses >= 1
    memo.reset_counters()
    assert cache.stats.hits == 0 and cache.stats.misses == 0


def test_toggle_transition_flushes_live_caches():
    # Regression: entries cached while enabled used to survive a disable/
    # re-enable cycle, so an A/B run's "cached" arm could serve state from
    # before the bypass window.
    cache = memo.Memo("t-flush-toggle")
    cache.get_or_compute("k", lambda: 1)
    assert len(cache) == 1
    memo.set_enabled(False)
    assert len(cache) == 0
    assert cache.stats.evictions == 1
    memo.set_enabled(True)
    calls = []
    assert cache.get_or_compute("k", lambda: calls.append(1) or 2) == 2
    assert calls  # recomputed, not served stale


def test_reasserting_current_state_keeps_warm_entries():
    # Forked workers re-apply the parent's (unchanged) toggle; that must
    # not cost them their inherited warm caches.
    cache = memo.Memo("t-flush-noop")
    cache.get_or_compute("k", lambda: 1)
    memo.set_enabled(True)
    assert len(cache) == 1
    assert cache.stats.evictions == 0


def test_flush_counts_evictions_clear_does_not():
    cache = memo.Memo("t-flush-vs-clear")
    cache.get_or_compute("a", lambda: 1)
    cache.get_or_compute("b", lambda: 2)
    cache.clear()
    assert len(cache) == 0 and cache.stats.evictions == 0
    cache.get_or_compute("a", lambda: 1)
    cache.flush()
    assert len(cache) == 0 and cache.stats.evictions == 1


def test_resize_evicts_lru_overflow_immediately():
    cache = memo.Memo("t-resize", maxsize=4)
    for key in "abcd":
        cache.get_or_compute(key, lambda: key)
    cache.get_or_compute("a", lambda: None)  # refresh: b is now oldest
    cache.resize(2)
    assert len(cache) == 2
    assert cache.stats.evictions == 2
    calls = []
    assert cache.get_or_compute("a", lambda: calls.append(1)) == "a"
    assert cache.get_or_compute("d", lambda: calls.append(1)) == "d"
    assert calls == []  # the two most-recent entries survived
    with pytest.raises(ValueError):
        cache.resize(0)


def test_reregistration_with_smaller_maxsize_shrinks():
    # Regression: memo("name", maxsize=small) on an existing bigger cache
    # used to be ignored, so capped-cache experiments measured the
    # uncapped cache.
    first = memo.memo("t-shrink", maxsize=8)
    for key in range(8):
        first.get_or_compute(key, lambda: key)
    second = memo.memo("t-shrink", maxsize=3)
    assert second is first
    assert first.maxsize == 3
    assert len(first) == 3
    # A larger request still never grows the cache.
    assert memo.memo("t-shrink", maxsize=100).maxsize == 3
