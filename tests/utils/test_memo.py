"""Unit tests for the bounded memoization layer (:mod:`repro.utils.memo`)."""

import pytest

from repro.utils import memo


@pytest.fixture(autouse=True)
def _enabled_memo():
    """Each test starts with the memo layer on and leaves it on."""
    previous = memo.set_enabled(True)
    yield
    memo.set_enabled(previous)


def test_miss_then_hit():
    cache = memo.Memo("t-basic")
    calls = []
    assert cache.get_or_compute("k", lambda: calls.append(1) or 41) == 41
    assert cache.get_or_compute("k", lambda: calls.append(1) or 99) == 41
    assert len(calls) == 1
    assert cache.stats.hits == 1
    assert cache.stats.misses == 1


def test_none_results_are_cached():
    """A computed ``None`` is a value, not a cache miss."""
    cache = memo.Memo("t-none")
    calls = []
    assert cache.get_or_compute("k", lambda: calls.append(1)) is None
    assert cache.get_or_compute("k", lambda: calls.append(1)) is None
    assert len(calls) == 1


def test_lru_bound_evicts_oldest():
    cache = memo.Memo("t-lru", maxsize=2)
    cache.get_or_compute("a", lambda: 1)
    cache.get_or_compute("b", lambda: 2)
    cache.get_or_compute("a", lambda: -1)  # refresh a: b is now oldest
    cache.get_or_compute("c", lambda: 3)  # evicts b
    assert len(cache) == 2
    assert cache.stats.evictions == 1
    calls = []
    assert cache.get_or_compute("a", lambda: calls.append(1) or -1) == 1
    assert cache.get_or_compute("b", lambda: calls.append(1) or -2) == -2
    assert len(calls) == 1  # a was retained, b recomputed


def test_maxsize_must_be_positive():
    with pytest.raises(ValueError):
        memo.Memo("t-bad", maxsize=0)


def test_disable_bypasses_storage_and_counters():
    cache = memo.Memo("t-disabled")
    previous = memo.set_enabled(False)
    try:
        calls = []
        assert cache.get_or_compute("k", lambda: calls.append(1) or 7) == 7
        assert cache.get_or_compute("k", lambda: calls.append(1) or 8) == 8
        assert len(calls) == 2
        assert len(cache) == 0
        assert cache.stats.hits == 0 and cache.stats.misses == 0
    finally:
        memo.set_enabled(previous)
    # Re-enabling resumes normal caching.
    assert cache.get_or_compute("k", lambda: 9) == 9
    assert cache.get_or_compute("k", lambda: 10) == 9


def test_set_enabled_returns_previous():
    assert memo.set_enabled(False) is True
    assert memo.caches_enabled() is False
    assert memo.set_enabled(True) is False
    assert memo.caches_enabled() is True


def test_registry_shares_instances():
    first = memo.memo("t-shared", maxsize=10)
    second = memo.memo("t-shared", maxsize=999)
    assert first is second
    assert second.maxsize == 10  # first registration wins


def test_registry_stats_and_clear():
    cache = memo.memo("t-registry-stats")
    cache.get_or_compute("k", lambda: 1)
    cache.get_or_compute("k", lambda: 1)
    stats = memo.all_stats()["t-registry-stats"]
    assert stats["hits"] >= 1 and stats["misses"] >= 1
    hits, misses = memo.global_counters()
    assert hits >= 1 and misses >= 1
    memo.clear_all()
    assert len(cache) == 0
    # Counters survive clear_all; reset_counters zeroes them.
    assert cache.stats.misses >= 1
    memo.reset_counters()
    assert cache.stats.hits == 0 and cache.stats.misses == 0
