"""Thread-safety hammer tests for the bounded memo caches.

The equivalence service handles concurrent requests on a thread pool, so
the process-wide memo caches see genuinely concurrent get/put/flush/
resize traffic.  Before the single-lock fix, concurrent eviction could
corrupt the OrderedDict (KeyError out of ``popitem``/``move_to_end``) and
stats updates could be lost; these tests hammer exactly those paths.
"""

from __future__ import annotations

import threading

import pytest

from repro.utils.memo import Memo, memo, set_enabled


def _hammer(worker, n_threads: int = 8) -> list:
    """Run ``worker(index)`` on N threads at once; re-raise any error."""
    errors: list = []
    barrier = threading.Barrier(n_threads)

    def run(index: int) -> None:
        try:
            barrier.wait()
            worker(index)
        except Exception as exc:  # pragma: no cover - only on regression
            errors.append(exc)

    threads = [
        threading.Thread(target=run, args=(i,)) for i in range(n_threads)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return errors


def test_concurrent_get_or_compute_with_eviction_pressure():
    """Many threads over a tiny cache: constant eviction, no corruption."""
    cache = Memo("test.threads.evict", maxsize=4)
    rounds = 400

    def worker(index: int) -> None:
        for i in range(rounds):
            key = (index * rounds + i) % 16
            value = cache.get_or_compute(key, lambda k=key: k * 2)
            assert value == key * 2

    errors = _hammer(worker)
    assert errors == []
    assert len(cache) <= 4


def test_concurrent_lookups_against_flush_and_resize():
    """Lookups racing flush/resize/clear never corrupt the cache."""
    cache = Memo("test.threads.flush", maxsize=64)

    def worker(index: int) -> None:
        for i in range(300):
            if index == 0 and i % 7 == 0:
                cache.flush()
            elif index == 1 and i % 11 == 0:
                cache.resize(8 + (i % 3))
            elif index == 2 and i % 13 == 0:
                cache.clear()
            else:
                key = i % 32
                assert cache.get_or_compute(key, lambda k=key: k + 1) == key + 1

    errors = _hammer(worker)
    assert errors == []
    assert len(cache) <= cache.maxsize


def test_stats_account_for_every_lookup():
    """hits + misses == total lookups even under contention."""
    cache = Memo("test.threads.stats", maxsize=1024)
    n_threads, rounds = 8, 500

    def worker(index: int) -> None:
        for i in range(rounds):
            cache.get_or_compute(i % 64, lambda v=i: v)

    errors = _hammer(worker, n_threads)
    assert errors == []
    assert cache.stats.hits + cache.stats.misses == n_threads * rounds


def test_concurrent_registry_registration_shares_one_instance():
    """Threads racing the first memo(name) call all get the same cache."""
    seen = []
    lock = threading.Lock()

    def worker(index: int) -> None:
        cache = memo("test.threads.registry", maxsize=32)
        with lock:
            seen.append(cache)

    errors = _hammer(worker)
    assert errors == []
    assert len({id(cache) for cache in seen}) == 1


def test_toggle_during_lookups_never_serves_stale_entries():
    """set_enabled transitions racing lookups stay consistent."""
    cache = Memo("test.threads.toggle", maxsize=32)

    def worker(index: int) -> None:
        for i in range(200):
            if index == 0 and i % 19 == 0:
                set_enabled(False)
                set_enabled(True)
            else:
                key = i % 8
                assert cache.get_or_compute(key, lambda k=key: k) == key

    try:
        errors = _hammer(worker)
    finally:
        set_enabled(True)
    assert errors == []


@pytest.mark.parametrize("maxsize", [1, 3])
def test_eviction_never_overflows_bound(maxsize):
    cache = Memo(f"test.threads.bound{maxsize}", maxsize=maxsize)

    def worker(index: int) -> None:
        for i in range(300):
            cache.get_or_compute((index, i), lambda: i)
            assert len(cache) <= maxsize

    errors = _hammer(worker)
    assert errors == []
