"""Unit tests for the union-find structure."""

import pytest

from repro.utils.unionfind import UnionFind


def test_singletons_are_their_own_representatives():
    uf = UnionFind(["a", "b"])
    assert uf.find("a") == "a"
    assert uf.find("b") == "b"


def test_union_merges_classes():
    uf = UnionFind()
    assert uf.union("a", "b") is True
    assert uf.connected("a", "b")


def test_union_same_class_returns_false():
    uf = UnionFind()
    uf.union("a", "b")
    assert uf.union("b", "a") is False


def test_transitivity():
    uf = UnionFind()
    uf.union("a", "b")
    uf.union("b", "c")
    assert uf.connected("a", "c")


def test_unseen_elements_are_not_connected():
    uf = UnionFind()
    assert not uf.connected("x", "y")
    # but both are now registered as singletons
    assert "x" in uf and "y" in uf


def test_classes_partition_the_universe():
    uf = UnionFind()
    uf.union(1, 2)
    uf.union(3, 4)
    uf.add(5)
    classes = uf.classes()
    assert sorted(sorted(c) for c in classes) == [[1, 2], [3, 4], [5]]


def test_class_of():
    uf = UnionFind()
    uf.union("a", "b")
    uf.union("b", "c")
    assert uf.class_of("a") == {"a", "b", "c"}


def test_copy_is_independent():
    uf = UnionFind()
    uf.union("a", "b")
    clone = uf.copy()
    clone.union("b", "c")
    assert clone.connected("a", "c")
    assert not uf.connected("a", "c")


def test_representative_map_is_consistent():
    uf = UnionFind()
    uf.union("a", "b")
    uf.union("c", "d")
    reps = uf.representative_map()
    assert reps["a"] == reps["b"]
    assert reps["c"] == reps["d"]
    assert reps["a"] != reps["c"]


def test_len_and_iter():
    uf = UnionFind(["a", "b", "c"])
    assert len(uf) == 3
    assert set(uf) == {"a", "b", "c"}


def test_mixed_hashable_types():
    uf = UnionFind()
    uf.union(("tuple", 1), "string")
    assert uf.connected(("tuple", 1), "string")
