"""Unit tests for the random query generators."""

import pytest

from repro.cq.saturation import has_only_identity_joins, is_product_query
from repro.cq.typecheck import is_well_typed
from repro.errors import QuerySyntaxError
from repro.workloads import (
    chain_query,
    cycle_query,
    edge_schema,
    random_identity_join_query,
    random_product_query,
    random_query,
    star_query,
)
from repro.workloads.schema_gen import random_keyed_schema


@pytest.fixture
def s():
    return random_keyed_schema(3, ["A", "B"], n_relations=3, max_arity=3)


def test_random_query_well_typed(s):
    for seed in range(20):
        q = random_query(s, seed=seed)
        assert is_well_typed(q, s)


def test_random_query_deterministic(s):
    assert random_query(s, seed=7) == random_query(s, seed=7)


def test_random_identity_join_query_satisfies_premise(s):
    for seed in range(20):
        q = random_identity_join_query(s, seed=seed)
        assert is_well_typed(q, s)
        assert has_only_identity_joins(q)


def test_random_product_query_is_product(s):
    for seed in range(20):
        q = random_product_query(s, seed=seed)
        assert is_well_typed(q, s)
        assert is_product_query(q)


def test_chain_query_shape():
    q = chain_query(3)
    assert len(q.body) == 3
    assert q.arity == 2
    assert is_well_typed(q, edge_schema())


def test_chain_query_rejects_zero():
    with pytest.raises(QuerySyntaxError):
        chain_query(0)


def test_cycle_query_shape():
    q = cycle_query(4)
    assert len(q.body) == 4
    assert is_well_typed(q, edge_schema())
    # Closed: last atom's dst is the first atom's src variable.
    assert q.body[-1].terms[1] == q.body[0].terms[0]


def test_star_query_shape():
    q = star_query(5)
    assert len(q.body) == 5
    centre = q.head.terms[0]
    assert all(a.terms[0] == centre for a in q.body)
    with pytest.raises(QuerySyntaxError):
        star_query(0)
