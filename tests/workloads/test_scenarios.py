"""Unit tests for the named scenarios (paper §1 and benchmark workloads)."""

from repro.relational import is_isomorphic
from repro.workloads import (
    edge_schema,
    integration_instance,
    paper_schema_1,
    paper_schema_1_prime,
    paper_schema_2,
    path_instance,
    random_graph_instance,
    star_join_instance,
    wide_keyed_schema,
)


def test_paper_schemas_parse():
    s1, inc1 = paper_schema_1()
    s1p, inc1p = paper_schema_1_prime()
    s2, inc2 = paper_schema_2()
    assert len(s1) == 3 and len(inc1) == 3
    assert len(s1p) == 3 and len(inc1p) == 3
    assert len(s2) == 2 and len(inc2) == 1
    assert s1.is_keyed and s1p.is_keyed and s2.is_keyed


def test_paper_schema_1_and_1_prime_not_isomorphic():
    """The paper's point: keys alone cannot make these equivalent."""
    s1, _ = paper_schema_1()
    s1p, _ = paper_schema_1_prime()
    assert not is_isomorphic(s1, s1p)


def test_integration_instance_satisfies_all_constraints():
    s1, inclusions = paper_schema_1()
    for seed in range(3):
        d = integration_instance(seed=seed, employees=9)
        assert d.schema == s1
        assert d.satisfies_keys()
        for inclusion in inclusions:
            assert inclusion.satisfied_by(d)


def test_path_instance():
    d = path_instance(5)
    assert len(d.relation("E")) == 5


def test_random_graph_instance_bounds():
    d = random_graph_instance(nodes=10, edges=30, seed=1)
    assert 0 < len(d.relation("E")) <= 30


def test_wide_keyed_schema():
    s = wide_keyed_schema(5, arity=3)
    assert len(s) == 5 and s.is_keyed
    assert all(r.arity == 3 for r in s)


def test_star_join_instance():
    schema, instance = star_join_instance(fact_rows=50, dimensions=2, dim_rows=8)
    assert instance.satisfies_keys()
    assert len(instance.relation("fact")) == 50
    assert len(instance.relation("dim0")) == 8
