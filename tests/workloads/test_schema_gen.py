"""Unit tests for the schema enumerator and random generator."""

from repro.relational import canonical_form, is_isomorphic
from repro.workloads import (
    count_keyed_schemas,
    enumerate_keyed_schemas,
    enumerate_relation_shapes,
    random_keyed_schema,
    schema_from_shapes,
    shuffled_copy,
)


def test_shape_counts_one_type():
    # One type, arity ≤ 2: shapes are (k), (kk), (k,n) → 3.
    shapes = enumerate_relation_shapes(["T"], max_arity=2)
    assert len(shapes) == 3


def test_shape_counts_two_types_arity_one():
    # Arity 1 keyed relations over 2 types: 2 shapes.
    shapes = enumerate_relation_shapes(["A", "B"], max_arity=1)
    assert len(shapes) == 2


def test_schema_from_shapes_structure():
    shapes = [(("T",), ("U", "U")), (("T", "T"), ())]
    s = schema_from_shapes(shapes)
    assert len(s) == 2
    r0 = s.relation("R0")
    assert r0.key == frozenset({"k0"})
    assert [a.type_name for a in r0.nonkey_attributes()] == ["U", "U"]
    r1 = s.relation("R1")
    assert r1.key == frozenset({"k0", "k1"})


def test_enumeration_yields_pairwise_non_isomorphic():
    schemas = list(enumerate_keyed_schemas(["T", "U"], max_relations=1, max_arity=2))
    forms = [canonical_form(s) for s in schemas]
    assert len(forms) == len(set(forms))


def test_enumeration_count_matches_closed_form():
    schemas = list(enumerate_keyed_schemas(["T"], max_relations=2, max_arity=2))
    assert len(schemas) == count_keyed_schemas(["T"], max_relations=2, max_arity=2)


def test_enumeration_all_keyed():
    for s in enumerate_keyed_schemas(["T", "U"], max_relations=2, max_arity=2):
        assert s.is_keyed


def test_random_schema_deterministic():
    a = random_keyed_schema(5, ["A", "B"], n_relations=3)
    b = random_keyed_schema(5, ["A", "B"], n_relations=3)
    assert a == b
    assert a.is_keyed and len(a) == 3


def test_shuffled_copy_isomorphic_not_equal():
    s = random_keyed_schema(1, ["A", "B"], n_relations=2, max_arity=3)
    copy = shuffled_copy(s, seed=9)
    assert is_isomorphic(s, copy)
    assert copy.relation_names != s.relation_names
